// Client <-> replica messages shared by every protocol implementation
// (PrestigeBFT and all baselines), so one ClientPool drives them all.

#ifndef PRESTIGE_TYPES_CLIENT_MESSAGES_H_
#define PRESTIGE_TYPES_CLIENT_MESSAGES_H_

#include <vector>

#include "runtime/message.h"
#include "types/ids.h"
#include "types/transaction.h"

namespace prestige {
namespace types {

/// A group of independent client proposals broadcast to all replicas.
///
/// Each entry is a separate Prop in the paper; aggregation is a simulation
/// device (one event per g proposals) — the cost model still charges the
/// replica g base processing units and the full payload bytes.
struct ClientBatch : public runtime::NetMessage {
  std::vector<Transaction> txs;

  size_t WireSize() const override {
    size_t total = 0;
    for (const Transaction& tx : txs) total += tx.WireBytes();
    return total;
  }
  int CostUnits() const override { return static_cast<int>(txs.size()); }
  const char* Name() const override { return "ClientBatch"; }
};

/// Commit notification (the paper's Notif): a replica tells clients that the
/// block at sequence `n` committed, covering the listed transactions.
///
/// A client considers a request committed once f+1 distinct replicas have
/// notified it (§4.3).
struct CommitNotif : public runtime::NetMessage {
  ReplicaId replica = 0;
  View v = 0;
  SeqNum n = 0;
  /// (pool, client_seq, sent_at) triples of committed transactions belonging
  /// to the destination pool.
  std::vector<Transaction> txs;

  size_t WireSize() const override { return 80 + txs.size() * 20; }
  const char* Name() const override { return "CommitNotif"; }
};

/// Client complaint (the paper's Compt): broadcast when a request misses its
/// deadline; carries the original proposal.
struct ClientComplaint : public runtime::NetMessage {
  Transaction tx;

  size_t WireSize() const override { return tx.WireBytes() + 80; }
  const char* Name() const override { return "ClientComplaint"; }
};

}  // namespace types
}  // namespace prestige

#endif  // PRESTIGE_TYPES_CLIENT_MESSAGES_H_
