// Client <-> replica messages shared by every protocol implementation
// (PrestigeBFT and all baselines), so one ClientPool drives them all.

#ifndef PRESTIGE_TYPES_CLIENT_MESSAGES_H_
#define PRESTIGE_TYPES_CLIENT_MESSAGES_H_

#include <vector>

#include "runtime/message.h"
#include "types/ids.h"
#include "types/transaction.h"

namespace prestige {
namespace types {

/// A group of independent client proposals broadcast to all replicas.
///
/// Each entry is a separate Prop in the paper; aggregation is a simulation
/// device (one event per g proposals) — the cost model still charges the
/// replica g base processing units and the full payload bytes.
struct ClientBatch : public runtime::NetMessage {
  std::vector<Transaction> txs;

  size_t WireSize() const override {
    size_t total = 0;
    for (const Transaction& tx : txs) total += tx.WireBytes();
    return total;
  }
  int CostUnits() const override { return static_cast<int>(txs.size()); }
  const char* Name() const override { return "ClientBatch"; }
};

/// One request's execution outcome inside a ClientReply.
struct ReplyEntry {
  uint64_t client_seq = 0;
  uint8_t status = 0;           ///< app::ExecStatus of the execution.
  bool duplicate = false;       ///< Served from the replica's reply cache.
  uint64_t result_digest = 0;   ///< app::ResultDigest(status, result).
  std::vector<uint8_t> result;  ///< Opaque execution result bytes.
};

/// Client reply (the successor of the paper's commit Notif): a replica
/// tells a client pool that the listed requests committed at sequence `n`
/// AND what each one's execution produced.
///
/// A client considers a request complete once f+1 distinct replicas have
/// replied with the *same result digest* (§4.3 commit rule, strengthened to
/// cover execution results).
struct ClientReply : public runtime::NetMessage {
  ReplicaId replica = 0;
  View v = 0;
  SeqNum n = 0;
  ClientPoolId pool = 0;  ///< Destination pool; entries all belong to it.
  std::vector<ReplyEntry> entries;

  size_t WireSize() const override {
    size_t total = 80;
    for (const ReplyEntry& e : entries) total += 26 + e.result.size();
    return total;
  }
  const char* Name() const override { return "ClientReply"; }
};

/// Client complaint (the paper's Compt): broadcast when a request misses its
/// deadline; carries the original proposal.
struct ClientComplaint : public runtime::NetMessage {
  Transaction tx;

  size_t WireSize() const override { return tx.WireBytes() + 80; }
  const char* Name() const override { return "ClientComplaint"; }
};

}  // namespace types
}  // namespace prestige

#endif  // PRESTIGE_TYPES_CLIENT_MESSAGES_H_
