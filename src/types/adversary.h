// AdversaryPolicy: the interposer protocol code consults at its
// send/propose/vote sites to enact scripted Byzantine behaviour.
//
// Protocol implementations (core/, baselines/, client/) hold at most a
// `const AdversaryPolicy*` — nullptr in every production and honest-run
// configuration — and ask it yes/no questions at the handful of points an
// active attacker can deviate: "do I propose this round?", "which body
// variant does this peer get?", "do I answer this peer's vote?", "do I
// forge this reply?". Every default answer is the honest one, so honest
// runs with a default-constructed policy are bit-identical to runs with
// no policy installed.
//
// The only concrete implementation lives in harness/adversary.h
// (ScriptedAdversary, driven by a types::ByzantineSpec). prestige_lint's
// `adversary` rule enforces that protocol code never constructs or
// subclasses a policy — it may only hold a pointer wired in by the
// harness.

#ifndef PRESTIGE_TYPES_ADVERSARY_H_
#define PRESTIGE_TYPES_ADVERSARY_H_

#include <cstdint>

#include "util/time.h"

namespace prestige {
namespace types {

/// Behaviour hooks consulted by replicas and clients. All hooks are const
/// and must be pure functions of (arguments, construction-time spec) —
/// policies run inside the deterministic simulator and byte-identical
/// seed sweeps depend on them introducing no state or entropy of their
/// own.
class AdversaryPolicy {
 public:
  virtual ~AdversaryPolicy() = default;

  /// Slow/selective leader: true while replica `self`, as leader, should
  /// suppress proposals and retransmissions (heartbeats keep flowing, so
  /// the replica looks alive to failure detectors that only watch pings).
  virtual bool WedgeProposals(uint32_t self, util::TimeMicros now) const {
    (void)self;
    (void)now;
    return false;
  }

  /// Equivocating leader: body variant replica `self` sends to follower
  /// `dest` for its next proposal. 0 = the canonical body; any other value
  /// selects a conflicting (but properly signed) body shared by all
  /// followers mapped to the same variant.
  virtual uint32_t ProposalVariant(uint32_t self, uint32_t dest,
                                   util::TimeMicros now) const {
    (void)self;
    (void)dest;
    (void)now;
    return 0;
  }

  /// Vote withholding: true when replica `self` should withhold its
  /// ordering/commit replies, prepare votes, and campaign votes from
  /// replica `target`.
  virtual bool WithholdVote(uint32_t self, uint32_t target,
                            util::TimeMicros now) const {
    (void)self;
    (void)target;
    (void)now;
    return false;
  }

  /// Forged replies: true when replica `self` should execute a tampered
  /// copy of the committed block (diverging its local application state)
  /// and report the forged results to clients.
  virtual bool TamperExecution(uint32_t self, util::TimeMicros now) const {
    (void)self;
    (void)now;
    return false;
  }

  /// Complaint spam: number of complaints about never-submitted
  /// transactions client pool `pool` should broadcast this retry scan.
  virtual uint32_t ComplaintSpamBurst(uint32_t pool,
                                      util::TimeMicros now) const {
    (void)pool;
    (void)now;
    return 0;
  }

  /// True when replica `id` is scripted to misbehave at any point of the
  /// run (activation windows ignored): such replicas carry no safety
  /// obligation and are excluded from cross-replica agreement checks.
  virtual bool IsByzantine(uint32_t id) const {
    (void)id;
    return false;
  }
};

}  // namespace types
}  // namespace prestige

#endif  // PRESTIGE_TYPES_ADVERSARY_H_
