// Strong-ish identifier aliases shared across protocols.

#ifndef PRESTIGE_TYPES_IDS_H_
#define PRESTIGE_TYPES_IDS_H_

#include <cstdint>

namespace prestige {
namespace types {

/// Replica index in [0, n). Also the crypto SignerId of that replica.
using ReplicaId = uint32_t;

/// Client-pool index; the harness offsets pools above replicas in the crypto
/// signer id space.
using ClientPoolId = uint32_t;

/// Consensus-group index in a sharded deployment. Group 0 is the only group
/// of an unsharded cluster, so single-group code never has to mention it.
using GroupId = uint32_t;

/// Monotonically increasing view number. Views start at 1 (paper §3 Init).
using View = int64_t;

/// txBlock sequence number. Block indices start at 1.
using SeqNum = int64_t;

/// Reputation penalty (rp) and compensation index (ci) are integers (§3).
using Penalty = int64_t;
using CompensationIndex = int64_t;

/// Number of tolerated Byzantine faults for a cluster of n replicas:
/// f = floor((n - 1) / 3).
constexpr uint32_t MaxFaulty(uint32_t n) { return (n - 1) / 3; }

/// Quorum size 2f + 1 for a cluster of n replicas.
constexpr uint32_t QuorumSize(uint32_t n) { return 2 * MaxFaulty(n) + 1; }

/// Fault-confirmation threshold f + 1.
constexpr uint32_t ConfirmSize(uint32_t n) { return MaxFaulty(n) + 1; }

}  // namespace types
}  // namespace prestige

#endif  // PRESTIGE_TYPES_IDS_H_
