// Scripted active-adversary specifications.
//
// A ByzantineSpec describes *active* misbehaviour — attacks that send
// well-formed, correctly signed protocol messages with adversarial content
// or timing — as opposed to the omission-style FaultSpec profiles (F1-F4,
// fault_spec.h) that the original attack suite models. The two planes
// compose: a scenario may cast FaultSpec attackers and ByzantineSpec
// attackers side by side.
//
// The spec is pure data. It is *enacted* by an AdversaryPolicy
// implementation (types/adversary.h) that scenario harness code installs
// on replicas and client pools; protocol code itself stays honest-path
// only and merely consults the installed policy at its send/propose/vote
// sites.
//
// Lives in types/ (beside fault_spec.h) for the same layering reason:
// protocol layers may depend on types/, while harness/ — where the
// concrete scripted policy lives — is out of bounds for them.

#ifndef PRESTIGE_TYPES_BYZANTINE_SPEC_H_
#define PRESTIGE_TYPES_BYZANTINE_SPEC_H_

#include <cstdint>
#include <vector>

#include "util/time.h"

namespace prestige {
namespace types {

/// Active misbehaviour class of one replica.
enum class Misbehaviour {
  kNone,
  /// Equivocating leader: while leading, proposes conflicting block bodies
  /// for the same sequence number to disjoint follower groups (each body
  /// properly signed, so followers accept their copy).
  kEquivocatingLeader,
  /// Slow/selective leader ("wedged but heartbeat-alive"): while leading,
  /// keeps heartbeats flowing but never proposes or retransmits, so
  /// liveness stalls without any crash signal.
  kSlowLeader,
  /// Vote withholding: never answers the listed targets' proposals or
  /// campaigns (ordering/commit replies, prepare votes, campaign votes).
  kVoteWithholding,
  /// Forged replies: executes tampered commands (diverging its local
  /// application state) and reports the forged results to clients.
  kForgedReply,
};

/// One replica's scripted misbehaviour and its activation window.
struct ReplicaMisbehaviour {
  uint32_t replica = 0;
  Misbehaviour kind = Misbehaviour::kNone;
  /// Virtual-time window in which the behaviour is active.
  util::TimeMicros start_at = 0;
  util::TimeMicros stop_at = 0;  ///< 0 = never stops.
  /// kEquivocatingLeader: number of disjoint follower groups fed
  /// conflicting bodies (>= 2; group 0 receives the canonical body).
  uint32_t equivocation_groups = 2;
  /// kVoteWithholding: replica ids starved of this replica's votes and
  /// replies. Empty = withhold from everyone.
  std::vector<uint32_t> withhold_against;

  bool ActiveAt(util::TimeMicros now) const {
    return kind != Misbehaviour::kNone && now >= start_at &&
           (stop_at == 0 || now < stop_at);
  }
};

/// Complete adversary cast for one scenario: per-replica misbehaviours
/// plus client-side complaint spam.
struct ByzantineSpec {
  std::vector<ReplicaMisbehaviour> replicas;

  /// Complaint spam: client pools [0, spam_pools) broadcast
  /// `spam_complaints_per_scan` complaints about transactions that were
  /// never submitted, every retry-scan period, within the window below.
  /// Spam targets the failure-detection path: each bogus complaint is an
  /// invitation to start an inspection / view change.
  uint32_t spam_pools = 0;
  uint32_t spam_complaints_per_scan = 0;
  util::TimeMicros spam_start_at = 0;
  util::TimeMicros spam_stop_at = 0;  ///< 0 = never stops.

  bool Empty() const {
    for (const ReplicaMisbehaviour& m : replicas) {
      if (m.kind != Misbehaviour::kNone) return false;
    }
    return spam_pools == 0 || spam_complaints_per_scan == 0;
  }

  /// The scripted misbehaviour of replica `id`, or nullptr when honest.
  const ReplicaMisbehaviour* ForReplica(uint32_t id) const {
    for (const ReplicaMisbehaviour& m : replicas) {
      if (m.replica == id && m.kind != Misbehaviour::kNone) return &m;
    }
    return nullptr;
  }

  bool SpamActiveAt(util::TimeMicros now) const {
    return spam_pools > 0 && spam_complaints_per_scan > 0 &&
           now >= spam_start_at &&
           (spam_stop_at == 0 || now < spam_stop_at);
  }
};

}  // namespace types
}  // namespace prestige

#endif  // PRESTIGE_TYPES_BYZANTINE_SPEC_H_
