#include "net/frame.h"

#include <algorithm>
#include <cstring>

#include "net/wire.h"

namespace prestige {
namespace net {

uint32_t Fnv1a32(const uint8_t* data, size_t len) {
  uint32_t hash = 2166136261u;
  for (size_t i = 0; i < len; ++i) {
    hash ^= data[i];
    hash *= 16777619u;
  }
  return hash;
}

std::vector<uint8_t> EncodeFrame(const FrameHeader& header,
                                 const uint8_t* payload, size_t payload_len) {
  Writer w;
  w.PutU32(kFrameMagic);
  w.PutU8(kFrameVersion);
  w.PutU8(0);  // flags, reserved
  w.PutU32(header.src);
  w.PutU32(header.dst);
  w.PutU64(header.seq);
  w.PutU32(header.frame_id);
  w.PutU16(header.frag_index);
  w.PutU16(header.frag_count);
  w.PutU32(static_cast<uint32_t>(payload_len));
  w.PutU32(header.total_len);
  w.PutU32(Fnv1a32(payload, payload_len));
  std::vector<uint8_t> out = w.Take();
  out.insert(out.end(), payload, payload + payload_len);
  return out;
}

bool DecodeFrameHeader(const uint8_t* data, size_t len, FrameHeader* out) {
  if (data == nullptr || len < kFrameHeaderBytes) return false;
  Reader r(data, len);
  if (r.U32() != kFrameMagic) return false;
  if (r.U8() != kFrameVersion) return false;
  r.U8();  // flags
  out->src = r.U32();
  out->dst = r.U32();
  out->seq = r.U64();
  out->frame_id = r.U32();
  out->frag_index = r.U16();
  out->frag_count = r.U16();
  out->payload_len = r.U32();
  out->total_len = r.U32();
  out->checksum = r.U32();
  return r.ok();
}

void FrameCounters::MergeFrom(const FrameCounters& other) {
  frames_sent += other.frames_sent;
  bytes_sent += other.bytes_sent;
  send_errors += other.send_errors;
  frames_received += other.frames_received;
  bytes_received += other.bytes_received;
  header_drops += other.header_drops;
  wrong_dst_drops += other.wrong_dst_drops;
  length_drops += other.length_drops;
  checksum_drops += other.checksum_drops;
  frag_drops += other.frag_drops;
  decode_drops += other.decode_drops;
  messages_assembled += other.messages_assembled;
  seq_gaps += other.seq_gaps;
  seq_out_of_order += other.seq_out_of_order;
  unserializable_drops += other.unserializable_drops;
}

// -------------------------------------------------------------- FrameWriter

std::vector<std::vector<uint8_t>> FrameWriter::Split(
    uint32_t dst, const std::vector<uint8_t>& payload) {
  std::vector<std::vector<uint8_t>> frames;
  if (payload.empty() || payload.size() > kMaxMessageBytes) return frames;

  const size_t frag_count =
      (payload.size() + kMaxFragPayload - 1) / kMaxFragPayload;
  const uint32_t frame_id = next_frame_id_++;
  uint64_t& seq = next_seq_[dst];

  FrameHeader h;
  h.src = src_;
  h.dst = dst;
  h.frame_id = frame_id;
  h.frag_count = static_cast<uint16_t>(frag_count);
  h.total_len = static_cast<uint32_t>(payload.size());
  for (size_t i = 0; i < frag_count; ++i) {
    const size_t offset = i * kMaxFragPayload;
    const size_t len = std::min(kMaxFragPayload, payload.size() - offset);
    h.frag_index = static_cast<uint16_t>(i);
    h.seq = ++seq;
    frames.push_back(EncodeFrame(h, payload.data() + offset, len));
  }
  return frames;
}

// ----------------------------------------------------------- FrameAssembler

void FrameAssembler::TrackSeq(const FrameHeader& h) {
  uint64_t& last = last_seq_[h.src];
  if (h.seq > last) {
    counters_.seq_gaps += h.seq - last - 1;
    last = h.seq;
  } else {
    ++counters_.seq_out_of_order;
  }
}

FrameAssembler::Partial* FrameAssembler::FindOrCreate(const FrameHeader& h) {
  for (Partial& p : partials_) {
    if (p.src == h.src && p.frame_id == h.frame_id) return &p;
  }
  if (partials_.size() >= kMaxReassembly) {
    // Evict the oldest partial — a flood of never-completed fragments must
    // not pin memory.
    size_t oldest = 0;
    for (size_t i = 1; i < partials_.size(); ++i) {
      if (partials_[i].tick < partials_[oldest].tick) oldest = i;
    }
    partials_.erase(partials_.begin() + static_cast<long>(oldest));
    ++counters_.frag_drops;
  }
  Partial p;
  p.src = h.src;
  p.frame_id = h.frame_id;
  p.total_len = h.total_len;
  p.frag_count = h.frag_count;
  p.tick = ++tick_;
  p.buf.assign(h.total_len, 0);
  p.have.assign(h.frag_count, false);
  partials_.push_back(std::move(p));
  return &partials_.back();
}

void FrameAssembler::Accept(const uint8_t* data, size_t len,
                            std::vector<Complete>* out) {
  FrameHeader h;
  if (!DecodeFrameHeader(data, len, &h)) {
    ++counters_.header_drops;
    return;
  }
  ++counters_.frames_received;
  counters_.bytes_received += len;
  if (h.dst != local_id_) {
    ++counters_.wrong_dst_drops;
    return;
  }
  TrackSeq(h);

  const uint8_t* payload = data + kFrameHeaderBytes;
  const size_t payload_len = len - kFrameHeaderBytes;
  // Every length claim is validated against reality before any indexing.
  if (h.payload_len != payload_len || h.total_len > kMaxMessageBytes ||
      h.frag_count == 0 || h.frag_index >= h.frag_count ||
      h.total_len == 0 || payload_len > kMaxFragPayload) {
    ++counters_.length_drops;
    return;
  }
  const size_t offset = static_cast<size_t>(h.frag_index) * kMaxFragPayload;
  if (offset + payload_len > h.total_len ||
      (h.frag_index + 1 < h.frag_count && payload_len != kMaxFragPayload) ||
      (h.frag_index + 1 == h.frag_count &&
       offset + payload_len != h.total_len)) {
    ++counters_.length_drops;
    return;
  }
  if (Fnv1a32(payload, payload_len) != h.checksum) {
    ++counters_.checksum_drops;
    return;
  }

  // Single-fragment fast path: no reassembly state.
  if (h.frag_count == 1) {
    ++counters_.messages_assembled;
    Complete c;
    c.src = h.src;
    c.payload.assign(payload, payload + payload_len);
    out->push_back(std::move(c));
    return;
  }

  Partial* p = FindOrCreate(h);
  // A later fragment whose geometry disagrees with the partial's first
  // fragment is hostile or corrupted: drop the whole partial.
  if (p->total_len != h.total_len || p->frag_count != h.frag_count) {
    for (size_t i = 0; i < partials_.size(); ++i) {
      if (&partials_[i] == p) {
        partials_.erase(partials_.begin() + static_cast<long>(i));
        break;
      }
    }
    ++counters_.frag_drops;
    return;
  }
  if (p->have[h.frag_index]) {
    ++counters_.seq_out_of_order;  // Duplicate fragment.
    return;
  }
  std::memcpy(p->buf.data() + offset, payload, payload_len);
  p->have[h.frag_index] = true;
  ++p->received;
  if (p->received < p->frag_count) return;

  ++counters_.messages_assembled;
  Complete c;
  c.src = p->src;
  c.payload = std::move(p->buf);
  out->push_back(std::move(c));
  for (size_t i = 0; i < partials_.size(); ++i) {
    if (&partials_[i] == p) {
      partials_.erase(partials_.begin() + static_cast<long>(i));
      break;
    }
  }
}

}  // namespace net
}  // namespace prestige
