// Thin non-blocking socket wrappers. The ONLY files that may touch raw OS
// networking headers are src/net/* and src/runtime/* (enforced by
// prestige_lint's `sockets` rule); everything above speaks these classes.
//
// UdpSocket carries replica/client datagrams; TcpListener/TcpConn implement
// the daemon's line-oriented control protocol; PollSockets wraps poll(2)
// for the socket runtime's event loop. All types are plain-int-fd based so
// these headers stay free of <sys/socket.h> and friends.

#ifndef PRESTIGE_NET_SOCKET_H_
#define PRESTIGE_NET_SOCKET_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "net/address.h"

namespace prestige {
namespace net {

/// A bound, non-blocking UDP socket.
class UdpSocket {
 public:
  UdpSocket() = default;
  ~UdpSocket();
  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;
  UdpSocket(UdpSocket&& other) noexcept;
  UdpSocket& operator=(UdpSocket&& other) noexcept;

  /// Creates, binds (port 0 = kernel-assigned), sets non-blocking, and
  /// enlarges SO_RCVBUF/SO_SNDBUF. On failure returns false with `error`
  /// describing the failing call.
  bool Bind(const SockAddr& addr, std::string* error);

  /// The actually bound endpoint (resolves port-0 binds).
  SockAddr local_addr() const { return local_; }

  /// Sends one datagram. Returns false on any error, including would-block
  /// (UDP gives no delivery guarantee anyway; the caller counts it).
  bool SendTo(const SockAddr& to, const uint8_t* data, size_t len);

  /// Receives one datagram into `buf`. Returns the byte count, or -1 when
  /// nothing is ready (or on error).
  long RecvFrom(uint8_t* buf, size_t cap);

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void Close();

 private:
  int fd_ = -1;
  SockAddr local_;
};

/// A listening TCP socket for the control plane.
class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener();
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  bool Listen(const SockAddr& addr, std::string* error);
  SockAddr local_addr() const { return local_; }

  /// Waits up to `timeout_ms` for a connection; returns an accepted fd or
  /// -1 on timeout/error.
  int Accept(int timeout_ms);

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void Close();

 private:
  int fd_ = -1;
  SockAddr local_;
};

/// One blocking control-plane connection (line-oriented).
class TcpConn {
 public:
  TcpConn() = default;
  explicit TcpConn(int fd) : fd_(fd) {}
  ~TcpConn();
  TcpConn(const TcpConn&) = delete;
  TcpConn& operator=(const TcpConn&) = delete;
  TcpConn(TcpConn&& other) noexcept;
  TcpConn& operator=(TcpConn&& other) noexcept;

  /// Connects with a timeout. Returns an invalid conn on failure.
  static TcpConn Connect(const SockAddr& addr, int timeout_ms);

  bool valid() const { return fd_ >= 0; }

  /// Writes `line` + '\n' fully. False on error.
  bool SendLine(const std::string& line);

  /// Reads until '\n' (stripped) or `timeout_ms` elapses. False on
  /// timeout/EOF/error. Lines are capped at 16 MiB.
  bool RecvLine(std::string* out, int timeout_ms);

  void Close();

 private:
  int fd_ = -1;
  std::string buffer_;  ///< Bytes read past the last returned line.
};

/// poll(2) over up to `count` fds. Sets `readable[i]` for every fd with
/// pending input; returns false on poll error. `timeout_ms` < 0 blocks.
bool PollSockets(const int* fds, bool* readable, size_t count,
                 int timeout_ms);

}  // namespace net
}  // namespace prestige

#endif  // PRESTIGE_NET_SOCKET_H_
