// Addressing for multi-process deployments: host:port parsing, the peer
// address book, and the on-disk cluster config format shared by
// prestige_node (which reads it) and prestige_cluster / the process-cluster
// harness (which write it).
//
// Config format — line-based, '#' comments, whitespace-separated:
//
//   seed 42
//   protocol prestigebft        # prestigebft | hotstuff | sbft
//   n 4
//   batch 500
//   pools 1
//   clients_per_pool 200
//   payload 32
//   duration_us 6000000
//   node 0 replica 127.0.0.1:9000 127.0.0.1:9100
//   node 4 pool    127.0.0.1:9004 127.0.0.1:9104
//
// Node ids are deployment-global and follow the harness convention:
// replicas 0..n-1, then client pools n..n+pools-1. The fourth column is the
// node's data (UDP) address, the fifth its control (TCP) address.

#ifndef PRESTIGE_NET_ADDRESS_H_
#define PRESTIGE_NET_ADDRESS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace prestige {
namespace net {

/// An IPv4 endpoint in host byte order. Plain data — OS sockaddr types
/// never leak out of net/.
struct SockAddr {
  uint32_t ip = 0;
  uint16_t port = 0;

  bool valid() const { return ip != 0 || port != 0; }
  std::string ToString() const;  ///< "a.b.c.d:port".

  bool operator==(const SockAddr& other) const {
    return ip == other.ip && port == other.port;
  }
};

/// Parses "a.b.c.d:port". Returns false on malformed input.
bool ParseSockAddr(const std::string& text, SockAddr* out);

/// One process in a deployment.
struct PeerEntry {
  enum class Kind { kReplica, kPool };
  uint32_t id = 0;
  Kind kind = Kind::kReplica;
  SockAddr data;     ///< UDP endpoint for replica/client traffic.
  SockAddr control;  ///< TCP endpoint for the status/shutdown socket.
};

/// A parsed cluster config: workload parameters + the peer map.
struct ClusterConfig {
  uint64_t seed = 1;
  std::string protocol = "prestigebft";
  uint32_t n = 4;
  uint32_t batch = 500;
  uint32_t pools = 1;
  uint32_t clients_per_pool = 200;
  uint32_t payload = 32;
  int64_t duration_us = 6000000;
  std::vector<PeerEntry> peers;

  const PeerEntry* Find(uint32_t id) const;
  std::vector<uint32_t> ReplicaIds() const;
  std::vector<uint32_t> PoolIds() const;
};

/// Parses the config text. On failure returns false and describes the
/// offending line in `error`.
bool ParseClusterConfig(const std::string& text, ClusterConfig* out,
                        std::string* error);

/// Serializes `config` back into the file format ParseClusterConfig reads.
std::string FormatClusterConfig(const ClusterConfig& config);

}  // namespace net
}  // namespace prestige

#endif  // PRESTIGE_NET_ADDRESS_H_
