#include "net/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>

#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <unistd.h>

namespace prestige {
namespace net {
namespace {

sockaddr_in ToSockaddr(const SockAddr& addr) {
  sockaddr_in sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(addr.ip);
  sa.sin_port = htons(addr.port);
  return sa;
}

SockAddr FromSockaddr(const sockaddr_in& sa) {
  SockAddr addr;
  addr.ip = ntohl(sa.sin_addr.s_addr);
  addr.port = ntohs(sa.sin_port);
  return addr;
}

bool SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

SockAddr LocalAddrOf(int fd) {
  sockaddr_in sa;
  socklen_t len = sizeof(sa);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&sa), &len) != 0) {
    return SockAddr{};
  }
  return FromSockaddr(sa);
}

}  // namespace

// ---------------------------------------------------------------- UdpSocket

UdpSocket::~UdpSocket() { Close(); }

UdpSocket::UdpSocket(UdpSocket&& other) noexcept
    : fd_(other.fd_), local_(other.local_) {
  other.fd_ = -1;
}

UdpSocket& UdpSocket::operator=(UdpSocket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    local_ = other.local_;
    other.fd_ = -1;
  }
  return *this;
}

bool UdpSocket::Bind(const SockAddr& addr, std::string* error) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0) {
    if (error != nullptr) *error = "socket: " + std::string(strerror(errno));
    return false;
  }
  // Burst absorption: a leader broadcasting to n-1 peers plus client
  // batches can outrun a default-sized kernel buffer during commit storms.
  const int kBufBytes = 4 << 20;
  setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &kBufBytes, sizeof(kBufBytes));
  setsockopt(fd_, SOL_SOCKET, SO_SNDBUF, &kBufBytes, sizeof(kBufBytes));
  sockaddr_in sa = ToSockaddr(addr);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
    if (error != nullptr) {
      *error = "bind " + addr.ToString() + ": " + strerror(errno);
    }
    Close();
    return false;
  }
  if (!SetNonBlocking(fd_)) {
    if (error != nullptr) *error = "fcntl: " + std::string(strerror(errno));
    Close();
    return false;
  }
  local_ = LocalAddrOf(fd_);
  return true;
}

bool UdpSocket::SendTo(const SockAddr& to, const uint8_t* data, size_t len) {
  if (fd_ < 0) return false;
  sockaddr_in sa = ToSockaddr(to);
  const ssize_t sent =
      ::sendto(fd_, data, len, 0, reinterpret_cast<sockaddr*>(&sa),
               sizeof(sa));
  return sent == static_cast<ssize_t>(len);
}

long UdpSocket::RecvFrom(uint8_t* buf, size_t cap) {
  if (fd_ < 0) return -1;
  const ssize_t got = ::recvfrom(fd_, buf, cap, 0, nullptr, nullptr);
  return got < 0 ? -1 : static_cast<long>(got);
}

void UdpSocket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

// -------------------------------------------------------------- TcpListener

TcpListener::~TcpListener() { Close(); }

bool TcpListener::Listen(const SockAddr& addr, std::string* error) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    if (error != nullptr) *error = "socket: " + std::string(strerror(errno));
    return false;
  }
  const int one = 1;
  setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in sa = ToSockaddr(addr);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0 ||
      ::listen(fd_, 16) != 0) {
    if (error != nullptr) {
      *error = "listen " + addr.ToString() + ": " + strerror(errno);
    }
    Close();
    return false;
  }
  local_ = LocalAddrOf(fd_);
  return true;
}

int TcpListener::Accept(int timeout_ms) {
  if (fd_ < 0) return -1;
  pollfd pfd{fd_, POLLIN, 0};
  const int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready <= 0 || (pfd.revents & POLLIN) == 0) return -1;
  return ::accept(fd_, nullptr, nullptr);
}

void TcpListener::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

// ------------------------------------------------------------------ TcpConn

TcpConn::~TcpConn() { Close(); }

TcpConn::TcpConn(TcpConn&& other) noexcept
    : fd_(other.fd_), buffer_(std::move(other.buffer_)) {
  other.fd_ = -1;
}

TcpConn& TcpConn::operator=(TcpConn&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    buffer_ = std::move(other.buffer_);
    other.fd_ = -1;
  }
  return *this;
}

TcpConn TcpConn::Connect(const SockAddr& addr, int timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return TcpConn();
  if (!SetNonBlocking(fd)) {
    ::close(fd);
    return TcpConn();
  }
  sockaddr_in sa = ToSockaddr(addr);
  const int rc =
      ::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa));
  if (rc != 0 && errno != EINPROGRESS) {
    ::close(fd);
    return TcpConn();
  }
  if (rc != 0) {
    pollfd pfd{fd, POLLOUT, 0};
    if (::poll(&pfd, 1, timeout_ms) <= 0) {
      ::close(fd);
      return TcpConn();
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      ::close(fd);
      return TcpConn();
    }
  }
  return TcpConn(fd);
}

bool TcpConn::SendLine(const std::string& line) {
  if (fd_ < 0) return false;
  std::string framed = line;
  framed.push_back('\n');
  size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n =
        ::send(fd_, framed.data() + sent, framed.size() - sent, 0);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd pfd{fd_, POLLOUT, 0};
      if (::poll(&pfd, 1, 5000) <= 0) return false;
      continue;
    }
    return false;
  }
  return true;
}

bool TcpConn::RecvLine(std::string* out, int timeout_ms) {
  if (fd_ < 0) return false;
  constexpr size_t kMaxLine = 16u << 20;
  for (;;) {
    const size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      out->assign(buffer_, 0, newline);
      buffer_.erase(0, newline + 1);
      return true;
    }
    if (buffer_.size() > kMaxLine) return false;
    pollfd pfd{fd_, POLLIN, 0};
    if (::poll(&pfd, 1, timeout_ms) <= 0) return false;
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) continue;
      return false;
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

void TcpConn::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

// -------------------------------------------------------------- PollSockets

bool PollSockets(const int* fds, bool* readable, size_t count,
                 int timeout_ms) {
  pollfd pfds[8];
  if (count > 8) count = 8;
  for (size_t i = 0; i < count; ++i) {
    pfds[i].fd = fds[i];
    pfds[i].events = POLLIN;
    pfds[i].revents = 0;
    readable[i] = false;
  }
  const int ready = ::poll(pfds, static_cast<nfds_t>(count), timeout_ms);
  if (ready < 0) return errno == EINTR;
  for (size_t i = 0; i < count; ++i) {
    readable[i] = (pfds[i].revents & (POLLIN | POLLERR | POLLHUP)) != 0;
  }
  return true;
}

}  // namespace net
}  // namespace prestige
