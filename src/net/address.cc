#include "net/address.h"

#include <cstdio>
#include <sstream>

namespace prestige {
namespace net {

std::string SockAddr::ToString() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u:%u", (ip >> 24) & 0xff,
                (ip >> 16) & 0xff, (ip >> 8) & 0xff, ip & 0xff, port);
  return buf;
}

bool ParseSockAddr(const std::string& text, SockAddr* out) {
  unsigned a = 0, b = 0, c = 0, d = 0, port = 0;
  char tail = 0;
  const int matched = std::sscanf(text.c_str(), "%u.%u.%u.%u:%u%c", &a, &b,
                                  &c, &d, &port, &tail);
  if (matched != 5 || a > 255 || b > 255 || c > 255 || d > 255 ||
      port > 65535) {
    return false;
  }
  out->ip = (a << 24) | (b << 16) | (c << 8) | d;
  out->port = static_cast<uint16_t>(port);
  return true;
}

const PeerEntry* ClusterConfig::Find(uint32_t id) const {
  for (const PeerEntry& p : peers) {
    if (p.id == id) return &p;
  }
  return nullptr;
}

std::vector<uint32_t> ClusterConfig::ReplicaIds() const {
  std::vector<uint32_t> ids;
  for (const PeerEntry& p : peers) {
    if (p.kind == PeerEntry::Kind::kReplica) ids.push_back(p.id);
  }
  return ids;
}

std::vector<uint32_t> ClusterConfig::PoolIds() const {
  std::vector<uint32_t> ids;
  for (const PeerEntry& p : peers) {
    if (p.kind == PeerEntry::Kind::kPool) ids.push_back(p.id);
  }
  return ids;
}

bool ParseClusterConfig(const std::string& text, ClusterConfig* out,
                        std::string* error) {
  std::istringstream stream(text);
  std::string line;
  int line_no = 0;
  auto fail = [&](const std::string& why) {
    if (error != nullptr) {
      *error = "line " + std::to_string(line_no) + ": " + why;
    }
    return false;
  };

  while (std::getline(stream, line)) {
    ++line_no;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream fields(line);
    std::string key;
    if (!(fields >> key)) continue;  // Blank / comment-only line.

    if (key == "seed") {
      if (!(fields >> out->seed)) return fail("seed wants an integer");
    } else if (key == "protocol") {
      if (!(fields >> out->protocol)) return fail("protocol wants a name");
      if (out->protocol != "prestigebft" && out->protocol != "hotstuff" &&
          out->protocol != "sbft") {
        return fail("unknown protocol '" + out->protocol + "'");
      }
    } else if (key == "n") {
      if (!(fields >> out->n) || out->n == 0) {
        return fail("n wants a positive integer");
      }
    } else if (key == "batch") {
      if (!(fields >> out->batch)) return fail("batch wants an integer");
    } else if (key == "pools") {
      if (!(fields >> out->pools)) return fail("pools wants an integer");
    } else if (key == "clients_per_pool") {
      if (!(fields >> out->clients_per_pool)) {
        return fail("clients_per_pool wants an integer");
      }
    } else if (key == "payload") {
      if (!(fields >> out->payload)) return fail("payload wants an integer");
    } else if (key == "duration_us") {
      if (!(fields >> out->duration_us) || out->duration_us < 0) {
        return fail("duration_us wants a non-negative integer");
      }
    } else if (key == "node") {
      PeerEntry peer;
      std::string kind, data, control;
      if (!(fields >> peer.id >> kind >> data >> control)) {
        return fail("node wants: <id> <replica|pool> <data> <control>");
      }
      if (kind == "replica") {
        peer.kind = PeerEntry::Kind::kReplica;
      } else if (kind == "pool") {
        peer.kind = PeerEntry::Kind::kPool;
      } else {
        return fail("node kind must be replica or pool, got '" + kind + "'");
      }
      if (!ParseSockAddr(data, &peer.data)) {
        return fail("bad data address '" + data + "'");
      }
      if (!ParseSockAddr(control, &peer.control)) {
        return fail("bad control address '" + control + "'");
      }
      if (out->Find(peer.id) != nullptr) {
        return fail("duplicate node id " + std::to_string(peer.id));
      }
      out->peers.push_back(peer);
    } else {
      return fail("unknown key '" + key + "'");
    }
  }
  if (out->peers.empty()) {
    line_no = 0;
    return fail("config declares no nodes");
  }
  return true;
}

std::string FormatClusterConfig(const ClusterConfig& config) {
  std::ostringstream out;
  out << "# prestige cluster config (net/address.h)\n";
  out << "seed " << config.seed << "\n";
  out << "protocol " << config.protocol << "\n";
  out << "n " << config.n << "\n";
  out << "batch " << config.batch << "\n";
  out << "pools " << config.pools << "\n";
  out << "clients_per_pool " << config.clients_per_pool << "\n";
  out << "payload " << config.payload << "\n";
  out << "duration_us " << config.duration_us << "\n";
  for (const PeerEntry& p : config.peers) {
    out << "node " << p.id << " "
        << (p.kind == PeerEntry::Kind::kReplica ? "replica" : "pool") << " "
        << p.data.ToString() << " " << p.control.ToString() << "\n";
  }
  return out.str();
}

}  // namespace net
}  // namespace prestige
