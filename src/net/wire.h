// Wire codec for the socket backend: every runtime::NetMessage that can
// legitimately cross a process boundary gets a byte-exact encoding, and the
// decode path treats its input as hostile.
//
// Design rules:
//   * bounds-checked reads only — a net::Reader carries an ok() flag that
//     latches false on the first out-of-range read and poisons every
//     subsequent accessor, so decoders never branch on uninitialised data;
//   * every length prefix is validated against both a per-field cap
//     (kMax... constants below) and the bytes actually remaining, so a
//     hostile count can neither overflow a vector reserve nor force a
//     multi-gigabyte allocation;
//   * DecodeMessage returns nullptr on any malformation (unknown kind,
//     truncation, oversized field, trailing bytes) — the caller counts the
//     drop; partial objects are never visible to protocol code;
//   * messages that exist only for in-process marshalling (the client's
//     SubmitRequestMsg closure carrier) have no wire form: EncodeMessage
//     returns false and the runtime falls back to local delivery.
//
// This codec is deliberately distinct from types::Encoder (codec.h): that
// family exists for domain-separated *hashing* with a globally unique tag
// registry; this one is a plain little-endian transport serializer whose
// output is never hashed or signed directly.

#ifndef PRESTIGE_NET_WIRE_H_
#define PRESTIGE_NET_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "crypto/sha256.h"
#include "runtime/message.h"

namespace prestige {
namespace net {

// Hostile-input caps. Generous relative to every real workload (batches top
// out in the low thousands), tight relative to memory exhaustion.
constexpr uint64_t kMaxWireTxs = 1 << 16;       ///< Txs per batch / block.
constexpr uint64_t kMaxWireCommand = 1 << 20;   ///< Command bytes per tx.
constexpr uint64_t kMaxWirePartials = 1 << 12;  ///< Signatures per QC.
constexpr uint64_t kMaxWireStatus = 1 << 20;    ///< Status bytes per block.
constexpr uint64_t kMaxWireBlocks = 1 << 13;    ///< Blocks per SyncResp.
constexpr uint64_t kMaxWireEntries = 1 << 16;   ///< Entries per ClientReply.
constexpr uint64_t kMaxWireResult = 1 << 20;    ///< Result bytes per entry.
constexpr uint64_t kMaxWireMapEntries = 1 << 12;  ///< rp/ci map entries.
constexpr uint64_t kMaxWireNoise = 1 << 20;     ///< Modelled noise bytes.

/// Little-endian byte writer (transport serialization only — see header
/// comment for why this is not a types::Encoder).
class Writer {
 public:
  void PutU8(uint8_t v) { buf_.push_back(v); }
  void PutU16(uint16_t v) { PutLe(v, 2); }
  void PutU32(uint32_t v) { PutLe(v, 4); }
  void PutU64(uint64_t v) { PutLe(v, 8); }
  void PutI64(int64_t v) { PutLe(static_cast<uint64_t>(v), 8); }
  void PutDigest(const crypto::Sha256Digest& d) {
    buf_.insert(buf_.end(), d.begin(), d.end());
  }
  /// u32 length prefix + raw bytes.
  void PutBytes(const std::vector<uint8_t>& bytes) {
    PutU32(static_cast<uint32_t>(bytes.size()));
    buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  }
  void PutRaw(const uint8_t* data, size_t len) {
    buf_.insert(buf_.end(), data, data + len);
  }

  const std::vector<uint8_t>& data() const { return buf_; }
  std::vector<uint8_t> Take() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  void PutLe(uint64_t v, int bytes) {
    for (int i = 0; i < bytes; ++i) {
      buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }

  std::vector<uint8_t> buf_;
};

/// Bounds-checked little-endian reader over untrusted bytes. Accessors
/// return 0 / empty once ok() is false; callers check ok() exactly once at
/// the end of a decode instead of after every field.
class Reader {
 public:
  Reader(const uint8_t* data, size_t len) : data_(data), len_(len) {}

  uint8_t U8() { return static_cast<uint8_t>(Le(1)); }
  uint16_t U16() { return static_cast<uint16_t>(Le(2)); }
  uint32_t U32() { return static_cast<uint32_t>(Le(4)); }
  uint64_t U64() { return Le(8); }
  int64_t I64() { return static_cast<int64_t>(Le(8)); }

  crypto::Sha256Digest Digest() {
    crypto::Sha256Digest d{};
    if (!Need(d.size())) return d;
    std::memcpy(d.data(), data_ + pos_, d.size());
    pos_ += d.size();
    return d;
  }

  /// u32 length prefix + raw bytes, rejecting lengths above `max_len` or
  /// beyond the remaining input.
  std::vector<uint8_t> Bytes(uint64_t max_len) {
    const uint32_t n = U32();
    if (!ok_ || n > max_len || !Need(n)) {
      ok_ = false;
      return {};
    }
    std::vector<uint8_t> out(data_ + pos_, data_ + pos_ + n);
    pos_ += n;
    return out;
  }

  /// u32 element-count prefix capped at `max_count`; also rejects counts
  /// that could not possibly fit in the remaining bytes (each element needs
  /// at least `min_element_bytes`), so a hostile count cannot drive a huge
  /// loop or allocation.
  uint64_t Count(uint64_t max_count, uint64_t min_element_bytes = 1) {
    const uint32_t n = U32();
    if (!ok_ || n > max_count ||
        static_cast<uint64_t>(n) * min_element_bytes > remaining()) {
      ok_ = false;
      return 0;
    }
    return n;
  }

  bool ok() const { return ok_; }
  size_t remaining() const { return ok_ ? len_ - pos_ : 0; }
  void Fail() { ok_ = false; }

 private:
  bool Need(size_t n) {
    if (!ok_ || len_ - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  uint64_t Le(int bytes) {
    if (!Need(static_cast<size_t>(bytes))) return 0;
    uint64_t v = 0;
    for (int i = 0; i < bytes; ++i) {
      v |= static_cast<uint64_t>(data_[pos_ + static_cast<size_t>(i)])
           << (8 * i);
    }
    pos_ += static_cast<size_t>(bytes);
    return v;
  }

  const uint8_t* data_;
  size_t len_;
  size_t pos_ = 0;
  bool ok_ = true;
};

/// Wire discriminator: first byte of every encoded message. Values are
/// frozen — append, never renumber.
enum class MsgKind : uint8_t {
  // PrestigeBFT (core/messages.h).
  kOrd = 1,
  kOrdReply = 2,
  kCmt = 3,
  kCmtReply = 4,
  kTxBlock = 5,
  kComptRelay = 6,
  kConfVc = 7,
  kReVc = 8,
  kCamp = 9,
  kVoteCp = 10,
  kVcBlock = 11,
  kVcYes = 12,
  kRef = 13,
  kRefReply = 14,
  kRdone = 15,
  kSyncReq = 16,
  kSyncResp = 17,
  kHeartbeat = 18,
  kNoise = 19,
  // Client plane (types/client_messages.h).
  kClientBatch = 32,
  kClientReply = 33,
  kClientComplaint = 34,
  // HotStuff baseline.
  kHsProposal = 48,
  kHsVote = 49,
  kHsPhase = 50,
  kHsNewView = 51,
  // SBFT baseline.
  kSbPrePrepare = 64,
  kSbShare = 65,
  kSbProof = 66,
};

/// Appends the full wire form (kind byte + body) of `msg` to `out`.
/// Returns false when the concrete type has no wire encoding (in-process
/// marshal messages) — the caller decides between local delivery and drop.
bool EncodeMessage(const runtime::NetMessage& msg, std::vector<uint8_t>* out);

/// Decodes one message from untrusted bytes. Returns nullptr on ANY
/// malformation: unknown kind, truncation, field over its cap, out-of-range
/// enum value, or trailing bytes after a complete body. Never throws, never
/// reads out of range, never returns a partially initialised message.
runtime::MessagePtr DecodeMessage(const uint8_t* data, size_t len);

}  // namespace net
}  // namespace prestige

#endif  // PRESTIGE_NET_WIRE_H_
