// Datagram framing for the socket backend.
//
// Every UDP datagram carries one fixed 42-byte header followed by a payload
// fragment. The header identifies the logical (src, dst) node pair, a
// per-(src, dst) sequence number (loss/reorder observability — the protocol
// layer above already retransmits, so frames are never re-sent by this
// layer), and fragmentation coordinates: messages larger than one datagram
// (big SyncResp bodies, large batches) are split into frag_count fragments
// sharing a frame_id and reassembled on the receiver.
//
// The decode path is hostile-input safe: short datagrams, bad magic,
// version/dst mismatches, length lies, checksum failures, and reassembly
// floods all turn into counted drops (FrameCounters), never crashes or
// unbounded memory. The reassembly table is bounded: at most
// kMaxReassembly partial messages are held; the oldest is evicted first.

#ifndef PRESTIGE_NET_FRAME_H_
#define PRESTIGE_NET_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

namespace prestige {
namespace net {

constexpr uint32_t kFrameMagic = 0x54464250;  ///< "PBFT" little-endian.
constexpr uint8_t kFrameVersion = 1;
constexpr size_t kFrameHeaderBytes = 42;
/// Datagram budget: below the 64 KiB UDP ceiling with headroom for the
/// kernel's own headers.
constexpr size_t kMaxDatagramBytes = 60000;
constexpr size_t kMaxFragPayload = kMaxDatagramBytes - kFrameHeaderBytes;
/// Whole-message ceiling across all fragments of one frame_id.
constexpr size_t kMaxMessageBytes = 32u << 20;
/// Concurrent partial reassemblies held per receiving socket.
constexpr size_t kMaxReassembly = 64;

/// One datagram's header, host-order.
struct FrameHeader {
  uint32_t src = 0;        ///< Sending node id (claimed; see socket_env.h).
  uint32_t dst = 0;        ///< Intended receiving node id.
  uint64_t seq = 0;        ///< Per-(src, dst) datagram counter, from 1.
  uint32_t frame_id = 0;   ///< Per-src message counter (reassembly key).
  uint16_t frag_index = 0;
  uint16_t frag_count = 1;
  uint32_t payload_len = 0;  ///< Payload bytes in THIS datagram.
  uint32_t total_len = 0;    ///< Whole message bytes across all fragments.
  uint32_t checksum = 0;     ///< FNV-1a over this datagram's payload.
};

/// FNV-1a 32-bit — integrity against truncation/corruption, not an
/// authenticator (message-level MACs provide authentication).
uint32_t Fnv1a32(const uint8_t* data, size_t len);

/// Serializes `header` + `payload` into one datagram buffer.
std::vector<uint8_t> EncodeFrame(const FrameHeader& header,
                                 const uint8_t* payload, size_t payload_len);

/// Parses a datagram's header. Returns false on short input, bad magic, or
/// unsupported version; performs no payload validation (FrameAssembler's
/// job).
bool DecodeFrameHeader(const uint8_t* data, size_t len, FrameHeader* out);

/// Frame-level observability counters (one set per socket direction).
struct FrameCounters {
  uint64_t frames_sent = 0;
  uint64_t bytes_sent = 0;
  uint64_t send_errors = 0;       ///< sendto failures (incl. would-block).
  uint64_t frames_received = 0;
  uint64_t bytes_received = 0;
  uint64_t header_drops = 0;      ///< Short datagram / magic / version.
  uint64_t wrong_dst_drops = 0;   ///< dst field does not match this node.
  uint64_t length_drops = 0;      ///< payload_len / total_len lies.
  uint64_t checksum_drops = 0;
  uint64_t frag_drops = 0;        ///< Inconsistent or evicted fragments.
  uint64_t decode_drops = 0;      ///< Frame ok, wire decode failed.
  uint64_t messages_assembled = 0;
  uint64_t seq_gaps = 0;          ///< Missing datagrams inferred from seq.
  uint64_t seq_out_of_order = 0;  ///< Duplicate or reordered datagrams.
  uint64_t unserializable_drops = 0;  ///< Sends with no wire form, remote dst.

  void MergeFrom(const FrameCounters& other);
};

/// Sender-side splitter: owns the per-destination sequence counters and the
/// per-source frame_id counter for one local node.
class FrameWriter {
 public:
  explicit FrameWriter(uint32_t src) : src_(src) {}

  /// Splits `payload` into ready-to-send datagrams addressed to `dst`.
  /// Returns an empty vector when payload is empty or over
  /// kMaxMessageBytes.
  std::vector<std::vector<uint8_t>> Split(uint32_t dst,
                                          const std::vector<uint8_t>& payload);

 private:
  uint32_t src_;
  uint32_t next_frame_id_ = 1;
  std::map<uint32_t, uint64_t> next_seq_;  ///< Per destination, from 1.
};

/// Receiver-side reassembler for one local node's socket.
class FrameAssembler {
 public:
  /// `local_id` is the node this socket belongs to; frames addressed to
  /// anyone else are counted and dropped.
  explicit FrameAssembler(uint32_t local_id) : local_id_(local_id) {}

  /// A fully reassembled message payload and its claimed sender.
  struct Complete {
    uint32_t src = 0;
    std::vector<uint8_t> payload;
  };

  /// Feeds one received datagram; appends any message it completes to
  /// `out`. Malformed input is counted in counters() and dropped.
  void Accept(const uint8_t* data, size_t len, std::vector<Complete>* out);

  FrameCounters& counters() { return counters_; }
  const FrameCounters& counters() const { return counters_; }
  size_t pending_partials() const { return partials_.size(); }

 private:
  struct Partial {
    uint32_t src = 0;
    uint32_t frame_id = 0;
    uint32_t total_len = 0;
    uint16_t frag_count = 0;
    uint16_t received = 0;
    uint64_t tick = 0;  ///< Insertion order, for oldest-first eviction.
    std::vector<uint8_t> buf;
    std::vector<bool> have;
  };

  void TrackSeq(const FrameHeader& h);
  Partial* FindOrCreate(const FrameHeader& h);

  uint32_t local_id_;
  uint64_t tick_ = 0;
  std::vector<Partial> partials_;
  std::map<uint32_t, uint64_t> last_seq_;  ///< Highest seq seen per src.
  FrameCounters counters_;
};

}  // namespace net
}  // namespace prestige

#endif  // PRESTIGE_NET_FRAME_H_
