#include "net/wire.h"

#include <memory>
#include <utility>

#include "baselines/hotstuff/hotstuff_replica.h"
#include "baselines/sbft/sbft_replica.h"
#include "core/messages.h"
#include "crypto/quorum_cert.h"
#include "ledger/tx_block.h"
#include "ledger/vc_block.h"
#include "types/client_messages.h"
#include "types/transaction.h"

namespace prestige {
namespace net {
namespace {

using baselines::hotstuff::HsNewViewMsg;
using baselines::hotstuff::HsPhase;
using baselines::hotstuff::HsPhaseMsg;
using baselines::hotstuff::HsProposalMsg;
using baselines::hotstuff::HsVoteMsg;
using baselines::sbft::SbPrePrepareMsg;
using baselines::sbft::SbProofMsg;
using baselines::sbft::SbShareMsg;

// ------------------------------------------------------------- components

void PutSig(Writer& w, const crypto::Signature& sig) {
  w.PutU32(sig.signer);
  w.PutDigest(sig.mac);
}

crypto::Signature GetSig(Reader& r) {
  crypto::Signature sig;
  sig.signer = r.U32();
  sig.mac = r.Digest();
  return sig;
}

void PutQc(Writer& w, const crypto::QuorumCert& qc) {
  w.PutDigest(qc.digest);
  w.PutU32(qc.threshold);
  w.PutU32(static_cast<uint32_t>(qc.partials.size()));
  for (const crypto::Signature& sig : qc.partials) PutSig(w, sig);
}

crypto::QuorumCert GetQc(Reader& r) {
  crypto::QuorumCert qc;
  qc.digest = r.Digest();
  qc.threshold = r.U32();
  // One partial = 4-byte signer + 32-byte MAC.
  const uint64_t count = r.Count(kMaxWirePartials, 36);
  for (uint64_t i = 0; i < count && r.ok(); ++i) {
    qc.partials.push_back(GetSig(r));
  }
  return qc;
}

void PutTx(Writer& w, const types::Transaction& tx) {
  w.PutU32(tx.pool);
  w.PutU64(tx.client_seq);
  w.PutU32(tx.group);
  w.PutI64(tx.sent_at);
  w.PutU32(tx.payload_size);
  w.PutU64(tx.fingerprint);
  w.PutBytes(tx.command);
}

types::Transaction GetTx(Reader& r) {
  types::Transaction tx;
  tx.pool = r.U32();
  tx.client_seq = r.U64();
  tx.group = r.U32();
  tx.sent_at = r.I64();
  tx.payload_size = r.U32();
  if (tx.payload_size > (1u << 30)) r.Fail();
  tx.fingerprint = r.U64();
  tx.command = r.Bytes(kMaxWireCommand);
  return tx;
}

void PutTxVec(Writer& w, const std::vector<types::Transaction>& txs) {
  w.PutU32(static_cast<uint32_t>(txs.size()));
  for (const types::Transaction& tx : txs) PutTx(w, tx);
}

std::vector<types::Transaction> GetTxVec(Reader& r) {
  std::vector<types::Transaction> txs;
  // One tx = at least 40 fixed bytes (+4 command length prefix).
  const uint64_t count = r.Count(kMaxWireTxs, 40);
  txs.reserve(count);
  for (uint64_t i = 0; i < count && r.ok(); ++i) txs.push_back(GetTx(r));
  return txs;
}

void PutTxBlock(Writer& w, const ledger::TxBlock& b) {
  w.PutI64(b.v);
  w.PutI64(b.n());
  w.PutDigest(b.prev_hash());
  PutTxVec(w, b.txs());
  w.PutBytes(b.status);
  PutQc(w, b.ordering_qc);
  PutQc(w, b.commit_qc);
}

ledger::TxBlock GetTxBlock(Reader& r) {
  ledger::TxBlock b;
  b.v = r.I64();
  b.set_n(r.I64());
  b.set_prev_hash(r.Digest());
  b.set_txs(GetTxVec(r));
  b.status = r.Bytes(kMaxWireStatus);
  b.ordering_qc = GetQc(r);
  b.commit_qc = GetQc(r);
  return b;
}

void PutVcBlock(Writer& w, const ledger::VcBlock& b) {
  w.PutI64(b.v());
  w.PutU32(b.leader());
  w.PutI64(b.confirmed_view());
  w.PutDigest(b.prev_hash());
  w.PutU32(static_cast<uint32_t>(b.rp().size()));
  for (const auto& [id, penalty] : b.rp()) {
    w.PutU32(id);
    w.PutI64(penalty);
  }
  w.PutU32(static_cast<uint32_t>(b.ci().size()));
  for (const auto& [id, index] : b.ci()) {
    w.PutU32(id);
    w.PutI64(index);
  }
  PutQc(w, b.conf_qc);
  PutQc(w, b.vc_qc);
}

ledger::VcBlock GetVcBlock(Reader& r) {
  ledger::VcBlock b;
  b.set_v(r.I64());
  b.set_leader(r.U32());
  b.set_confirmed_view(r.I64());
  b.set_prev_hash(r.Digest());
  const uint64_t rp_count = r.Count(kMaxWireMapEntries, 12);
  for (uint64_t i = 0; i < rp_count && r.ok(); ++i) {
    const types::ReplicaId id = r.U32();
    const types::Penalty penalty = r.I64();
    b.SetPenalty(id, penalty);
  }
  const uint64_t ci_count = r.Count(kMaxWireMapEntries, 12);
  for (uint64_t i = 0; i < ci_count && r.ok(); ++i) {
    const types::ReplicaId id = r.U32();
    const types::CompensationIndex index = r.I64();
    b.SetCompensation(id, index);
  }
  b.conf_qc = GetQc(r);
  b.vc_qc = GetQc(r);
  return b;
}

// ----------------------------------------------------------------- encode

void PutKind(Writer& w, MsgKind kind) {
  w.PutU8(static_cast<uint8_t>(kind));
}

bool EncodeBody(const runtime::NetMessage& msg, Writer& w) {
  if (const auto* m = dynamic_cast<const types::ClientBatch*>(&msg)) {
    PutKind(w, MsgKind::kClientBatch);
    PutTxVec(w, m->txs);
    return true;
  }
  if (const auto* m = dynamic_cast<const types::ClientReply*>(&msg)) {
    PutKind(w, MsgKind::kClientReply);
    w.PutU32(m->replica);
    w.PutI64(m->v);
    w.PutI64(m->n);
    w.PutU32(m->pool);
    w.PutU32(static_cast<uint32_t>(m->entries.size()));
    for (const types::ReplyEntry& e : m->entries) {
      w.PutU64(e.client_seq);
      w.PutU8(e.status);
      w.PutU8(e.duplicate ? 1 : 0);
      w.PutU64(e.result_digest);
      w.PutBytes(e.result);
    }
    return true;
  }
  if (const auto* m = dynamic_cast<const core::OrdMsg*>(&msg)) {
    PutKind(w, MsgKind::kOrd);
    w.PutI64(m->v);
    w.PutI64(m->n);
    w.PutDigest(m->prev_hash);
    PutTxVec(w, m->txs);
    PutSig(w, m->sig);
    return true;
  }
  if (const auto* m = dynamic_cast<const core::OrdReplyMsg*>(&msg)) {
    PutKind(w, MsgKind::kOrdReply);
    w.PutI64(m->v);
    w.PutI64(m->n);
    PutSig(w, m->partial);
    return true;
  }
  if (const auto* m = dynamic_cast<const core::CmtMsg*>(&msg)) {
    PutKind(w, MsgKind::kCmt);
    w.PutI64(m->v);
    w.PutI64(m->n);
    w.PutDigest(m->block_digest);
    PutQc(w, m->ordering_qc);
    PutSig(w, m->sig);
    return true;
  }
  if (const auto* m = dynamic_cast<const core::CmtReplyMsg*>(&msg)) {
    PutKind(w, MsgKind::kCmtReply);
    w.PutI64(m->v);
    w.PutI64(m->n);
    PutSig(w, m->partial);
    return true;
  }
  if (const auto* m = dynamic_cast<const core::TxBlockMsg*>(&msg)) {
    PutKind(w, MsgKind::kTxBlock);
    PutTxBlock(w, m->block);
    return true;
  }
  if (const auto* m = dynamic_cast<const core::ComptRelayMsg*>(&msg)) {
    PutKind(w, MsgKind::kComptRelay);
    PutTx(w, m->tx);
    PutSig(w, m->sig);
    return true;
  }
  if (const auto* m = dynamic_cast<const core::ConfVcMsg*>(&msg)) {
    PutKind(w, MsgKind::kConfVc);
    w.PutI64(m->v);
    w.PutU8(static_cast<uint8_t>(m->reason));
    PutTx(w, m->tx);
    PutSig(w, m->sig);
    return true;
  }
  if (const auto* m = dynamic_cast<const core::ReVcMsg*>(&msg)) {
    PutKind(w, MsgKind::kReVc);
    w.PutI64(m->v);
    PutSig(w, m->partial);
    return true;
  }
  if (const auto* m = dynamic_cast<const core::CampMsg*>(&msg)) {
    PutKind(w, MsgKind::kCamp);
    PutQc(w, m->conf_qc);
    w.PutI64(m->v);
    w.PutI64(m->v_new);
    w.PutI64(m->rp);
    w.PutI64(m->ci);
    w.PutU64(m->nonce);
    w.PutDigest(m->hash_result);
    w.PutI64(m->claimed_difficulty_bits);
    PutTxBlock(w, m->latest_tx_block);
    w.PutI64(m->latest_n);
    w.PutI64(m->latest_vc_view);
    PutSig(w, m->sig);
    return true;
  }
  if (const auto* m = dynamic_cast<const core::VoteCpMsg*>(&msg)) {
    PutKind(w, MsgKind::kVoteCp);
    w.PutI64(m->v_new);
    w.PutU32(m->candidate);
    PutSig(w, m->partial);
    return true;
  }
  if (const auto* m = dynamic_cast<const core::VcBlockMsg*>(&msg)) {
    PutKind(w, MsgKind::kVcBlock);
    PutVcBlock(w, m->block);
    return true;
  }
  if (const auto* m = dynamic_cast<const core::VcYesMsg*>(&msg)) {
    PutKind(w, MsgKind::kVcYes);
    w.PutI64(m->v);
    w.PutI64(m->latest_n);
    PutSig(w, m->partial);
    return true;
  }
  if (const auto* m = dynamic_cast<const core::RefMsg*>(&msg)) {
    PutKind(w, MsgKind::kRef);
    w.PutI64(m->v);
    PutSig(w, m->sig);
    return true;
  }
  if (const auto* m = dynamic_cast<const core::RefReplyMsg*>(&msg)) {
    PutKind(w, MsgKind::kRefReply);
    w.PutU32(m->target);
    w.PutI64(m->v);
    PutSig(w, m->partial);
    return true;
  }
  if (const auto* m = dynamic_cast<const core::RdoneMsg*>(&msg)) {
    PutKind(w, MsgKind::kRdone);
    w.PutU32(m->target);
    w.PutI64(m->v);
    PutQc(w, m->rs_qc);
    PutSig(w, m->sig);
    return true;
  }
  if (const auto* m = dynamic_cast<const core::SyncReqMsg*>(&msg)) {
    PutKind(w, MsgKind::kSyncReq);
    w.PutU8(static_cast<uint8_t>(m->kind));
    w.PutI64(m->after);
    w.PutI64(m->up_to);
    return true;
  }
  if (const auto* m = dynamic_cast<const core::SyncRespMsg*>(&msg)) {
    PutKind(w, MsgKind::kSyncResp);
    w.PutU32(static_cast<uint32_t>(m->tx_blocks.size()));
    for (const ledger::TxBlock& b : m->tx_blocks) PutTxBlock(w, b);
    w.PutU32(static_cast<uint32_t>(m->vc_blocks.size()));
    for (const ledger::VcBlock& b : m->vc_blocks) PutVcBlock(w, b);
    return true;
  }
  if (const auto* m = dynamic_cast<const core::HeartbeatMsg*>(&msg)) {
    PutKind(w, MsgKind::kHeartbeat);
    w.PutI64(m->v);
    w.PutI64(m->latest_n);
    PutSig(w, m->sig);
    return true;
  }
  if (const auto* m = dynamic_cast<const core::NoiseMsg*>(&msg)) {
    PutKind(w, MsgKind::kNoise);
    // Modelled size only — the junk bytes themselves are not materialised.
    w.PutU32(static_cast<uint32_t>(
        m->bytes > kMaxWireNoise ? kMaxWireNoise : m->bytes));
    return true;
  }
  if (const auto* m = dynamic_cast<const types::ClientComplaint*>(&msg)) {
    PutKind(w, MsgKind::kClientComplaint);
    PutTx(w, m->tx);
    return true;
  }
  if (const auto* m = dynamic_cast<const HsProposalMsg*>(&msg)) {
    PutKind(w, MsgKind::kHsProposal);
    w.PutI64(m->v);
    PutTxBlock(w, m->block);
    PutSig(w, m->sig);
    return true;
  }
  if (const auto* m = dynamic_cast<const HsVoteMsg*>(&msg)) {
    PutKind(w, MsgKind::kHsVote);
    w.PutI64(m->v);
    w.PutU8(static_cast<uint8_t>(m->phase));
    w.PutI64(m->n);
    w.PutDigest(m->block_digest);
    PutSig(w, m->partial);
    return true;
  }
  if (const auto* m = dynamic_cast<const HsPhaseMsg*>(&msg)) {
    PutKind(w, MsgKind::kHsPhase);
    w.PutI64(m->v);
    w.PutU8(static_cast<uint8_t>(m->phase));
    w.PutI64(m->n);
    w.PutDigest(m->block_digest);
    PutQc(w, m->justify);
    PutSig(w, m->sig);
    return true;
  }
  if (const auto* m = dynamic_cast<const HsNewViewMsg*>(&msg)) {
    PutKind(w, MsgKind::kHsNewView);
    w.PutI64(m->v);
    w.PutI64(m->latest_n);
    PutSig(w, m->sig);
    return true;
  }
  if (const auto* m = dynamic_cast<const SbPrePrepareMsg*>(&msg)) {
    PutKind(w, MsgKind::kSbPrePrepare);
    w.PutI64(m->v);
    PutTxBlock(w, m->block);
    PutSig(w, m->sig);
    w.PutI64(m->crypto_weight);
    return true;
  }
  if (const auto* m = dynamic_cast<const SbShareMsg*>(&msg)) {
    PutKind(w, MsgKind::kSbShare);
    w.PutU8(static_cast<uint8_t>(m->stage));
    w.PutI64(m->v);
    w.PutI64(m->n);
    PutSig(w, m->partial);
    return true;
  }
  if (const auto* m = dynamic_cast<const SbProofMsg*>(&msg)) {
    PutKind(w, MsgKind::kSbProof);
    w.PutU8(static_cast<uint8_t>(m->stage));
    w.PutI64(m->v);
    w.PutI64(m->n);
    w.PutDigest(m->block_digest);
    PutQc(w, m->proof);
    PutSig(w, m->sig);
    return true;
  }
  // No wire form (e.g. client::SubmitRequestMsg, which carries a closure).
  return false;
}

// ----------------------------------------------------------------- decode

/// Reads a bounded enum byte; fails the reader on out-of-range values.
uint8_t GetEnum(Reader& r, uint8_t max_value) {
  const uint8_t v = r.U8();
  if (v > max_value) r.Fail();
  return v;
}

runtime::MessagePtr DecodeBody(MsgKind kind, Reader& r) {
  switch (kind) {
    case MsgKind::kOrd: {
      auto m = std::make_shared<core::OrdMsg>();
      m->v = r.I64();
      m->n = r.I64();
      m->prev_hash = r.Digest();
      m->txs = GetTxVec(r);
      m->sig = GetSig(r);
      return m;
    }
    case MsgKind::kOrdReply: {
      auto m = std::make_shared<core::OrdReplyMsg>();
      m->v = r.I64();
      m->n = r.I64();
      m->partial = GetSig(r);
      return m;
    }
    case MsgKind::kCmt: {
      auto m = std::make_shared<core::CmtMsg>();
      m->v = r.I64();
      m->n = r.I64();
      m->block_digest = r.Digest();
      m->ordering_qc = GetQc(r);
      m->sig = GetSig(r);
      return m;
    }
    case MsgKind::kCmtReply: {
      auto m = std::make_shared<core::CmtReplyMsg>();
      m->v = r.I64();
      m->n = r.I64();
      m->partial = GetSig(r);
      return m;
    }
    case MsgKind::kTxBlock: {
      auto m = std::make_shared<core::TxBlockMsg>();
      m->block = GetTxBlock(r);
      return m;
    }
    case MsgKind::kComptRelay: {
      auto m = std::make_shared<core::ComptRelayMsg>();
      m->tx = GetTx(r);
      m->sig = GetSig(r);
      return m;
    }
    case MsgKind::kConfVc: {
      auto m = std::make_shared<core::ConfVcMsg>();
      m->v = r.I64();
      m->reason = static_cast<core::VcReason>(
          GetEnum(r, static_cast<uint8_t>(core::VcReason::kPolicy)));
      m->tx = GetTx(r);
      m->sig = GetSig(r);
      return m;
    }
    case MsgKind::kReVc: {
      auto m = std::make_shared<core::ReVcMsg>();
      m->v = r.I64();
      m->partial = GetSig(r);
      return m;
    }
    case MsgKind::kCamp: {
      auto m = std::make_shared<core::CampMsg>();
      m->conf_qc = GetQc(r);
      m->v = r.I64();
      m->v_new = r.I64();
      m->rp = r.I64();
      m->ci = r.I64();
      m->nonce = r.U64();
      m->hash_result = r.Digest();
      const int64_t bits = r.I64();
      if (bits < 0 || bits > 256) r.Fail();
      m->claimed_difficulty_bits = static_cast<int>(bits);
      m->latest_tx_block = GetTxBlock(r);
      m->latest_n = r.I64();
      m->latest_vc_view = r.I64();
      m->sig = GetSig(r);
      return m;
    }
    case MsgKind::kVoteCp: {
      auto m = std::make_shared<core::VoteCpMsg>();
      m->v_new = r.I64();
      m->candidate = r.U32();
      m->partial = GetSig(r);
      return m;
    }
    case MsgKind::kVcBlock: {
      auto m = std::make_shared<core::VcBlockMsg>();
      m->block = GetVcBlock(r);
      return m;
    }
    case MsgKind::kVcYes: {
      auto m = std::make_shared<core::VcYesMsg>();
      m->v = r.I64();
      m->latest_n = r.I64();
      m->partial = GetSig(r);
      return m;
    }
    case MsgKind::kRef: {
      auto m = std::make_shared<core::RefMsg>();
      m->v = r.I64();
      m->sig = GetSig(r);
      return m;
    }
    case MsgKind::kRefReply: {
      auto m = std::make_shared<core::RefReplyMsg>();
      m->target = r.U32();
      m->v = r.I64();
      m->partial = GetSig(r);
      return m;
    }
    case MsgKind::kRdone: {
      auto m = std::make_shared<core::RdoneMsg>();
      m->target = r.U32();
      m->v = r.I64();
      m->rs_qc = GetQc(r);
      m->sig = GetSig(r);
      return m;
    }
    case MsgKind::kSyncReq: {
      auto m = std::make_shared<core::SyncReqMsg>();
      m->kind = static_cast<core::SyncReqMsg::Kind>(GetEnum(r, 1));
      m->after = r.I64();
      m->up_to = r.I64();
      return m;
    }
    case MsgKind::kSyncResp: {
      auto m = std::make_shared<core::SyncRespMsg>();
      // One tx block = at least 80 fixed bytes.
      const uint64_t tx_count = r.Count(kMaxWireBlocks, 80);
      for (uint64_t i = 0; i < tx_count && r.ok(); ++i) {
        m->tx_blocks.push_back(GetTxBlock(r));
      }
      const uint64_t vc_count = r.Count(kMaxWireBlocks, 60);
      for (uint64_t i = 0; i < vc_count && r.ok(); ++i) {
        m->vc_blocks.push_back(GetVcBlock(r));
      }
      return m;
    }
    case MsgKind::kHeartbeat: {
      auto m = std::make_shared<core::HeartbeatMsg>();
      m->v = r.I64();
      m->latest_n = r.I64();
      m->sig = GetSig(r);
      return m;
    }
    case MsgKind::kNoise: {
      auto m = std::make_shared<core::NoiseMsg>();
      const uint32_t bytes = r.U32();
      if (bytes > kMaxWireNoise) r.Fail();
      m->bytes = bytes;
      return m;
    }
    case MsgKind::kClientBatch: {
      auto m = std::make_shared<types::ClientBatch>();
      m->txs = GetTxVec(r);
      return m;
    }
    case MsgKind::kClientReply: {
      auto m = std::make_shared<types::ClientReply>();
      m->replica = r.U32();
      m->v = r.I64();
      m->n = r.I64();
      m->pool = r.U32();
      // One entry = at least 22 fixed bytes.
      const uint64_t count = r.Count(kMaxWireEntries, 22);
      m->entries.reserve(count);
      for (uint64_t i = 0; i < count && r.ok(); ++i) {
        types::ReplyEntry e;
        e.client_seq = r.U64();
        e.status = r.U8();
        e.duplicate = GetEnum(r, 1) != 0;
        e.result_digest = r.U64();
        e.result = r.Bytes(kMaxWireResult);
        m->entries.push_back(std::move(e));
      }
      return m;
    }
    case MsgKind::kClientComplaint: {
      auto m = std::make_shared<types::ClientComplaint>();
      m->tx = GetTx(r);
      return m;
    }
    case MsgKind::kHsProposal: {
      auto m = std::make_shared<HsProposalMsg>();
      m->v = r.I64();
      m->block = GetTxBlock(r);
      m->sig = GetSig(r);
      return m;
    }
    case MsgKind::kHsVote: {
      auto m = std::make_shared<HsVoteMsg>();
      m->v = r.I64();
      m->phase = static_cast<HsPhase>(
          GetEnum(r, static_cast<uint8_t>(HsPhase::kDecide)));
      m->n = r.I64();
      m->block_digest = r.Digest();
      m->partial = GetSig(r);
      return m;
    }
    case MsgKind::kHsPhase: {
      auto m = std::make_shared<HsPhaseMsg>();
      m->v = r.I64();
      m->phase = static_cast<HsPhase>(
          GetEnum(r, static_cast<uint8_t>(HsPhase::kDecide)));
      m->n = r.I64();
      m->block_digest = r.Digest();
      m->justify = GetQc(r);
      m->sig = GetSig(r);
      return m;
    }
    case MsgKind::kHsNewView: {
      auto m = std::make_shared<HsNewViewMsg>();
      m->v = r.I64();
      m->latest_n = r.I64();
      m->sig = GetSig(r);
      return m;
    }
    case MsgKind::kSbPrePrepare: {
      auto m = std::make_shared<SbPrePrepareMsg>();
      m->v = r.I64();
      m->block = GetTxBlock(r);
      m->sig = GetSig(r);
      const int64_t weight = r.I64();
      if (weight < 0 || weight > (1 << 16)) r.Fail();
      m->crypto_weight = static_cast<int>(weight);
      return m;
    }
    case MsgKind::kSbShare: {
      auto m = std::make_shared<SbShareMsg>();
      m->stage = static_cast<SbShareMsg::Stage>(GetEnum(r, 1));
      m->v = r.I64();
      m->n = r.I64();
      m->partial = GetSig(r);
      return m;
    }
    case MsgKind::kSbProof: {
      auto m = std::make_shared<SbProofMsg>();
      m->stage = static_cast<SbProofMsg::Stage>(GetEnum(r, 1));
      m->v = r.I64();
      m->n = r.I64();
      m->block_digest = r.Digest();
      m->proof = GetQc(r);
      m->sig = GetSig(r);
      return m;
    }
  }
  return nullptr;
}

}  // namespace

bool EncodeMessage(const runtime::NetMessage& msg, std::vector<uint8_t>* out) {
  Writer w;
  if (!EncodeBody(msg, w)) return false;
  const std::vector<uint8_t>& body = w.data();
  out->insert(out->end(), body.begin(), body.end());
  return true;
}

runtime::MessagePtr DecodeMessage(const uint8_t* data, size_t len) {
  if (data == nullptr || len == 0) return nullptr;
  Reader r(data + 1, len - 1);
  runtime::MessagePtr msg = DecodeBody(static_cast<MsgKind>(data[0]), r);
  if (msg == nullptr || !r.ok() || r.remaining() != 0) return nullptr;
  return msg;
}

}  // namespace net
}  // namespace prestige
