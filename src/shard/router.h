// shard::Router — deterministic hash-partitioning of the keyspace across
// parallel consensus groups.
//
// A sharded deployment runs G independent consensus groups (each its own
// replica set, leader, views, and reputation state) over one runtime
// backend. The Router is the single authority on key ownership: every
// key routes to exactly one group, the mapping is a pure function of
// (key, num_groups, salt), and every layer — workload generators picking
// keys for their group, clients stamping Transaction::group, and the
// harness's cross-group safety sweep — consults the same function. That
// is what makes "no key ever executes in two groups" checkable: the
// invariant reduces to "every committed transaction sits in the group the
// Router says owns its routing key".
//
// Routing key of a transaction: the KV key for command-encoded Put/Get
// payloads, the fingerprint otherwise (opaque consensus-only workloads and
// the legacy empty-command fingerprint-Put migration path both route on
// the fingerprint, mirroring app::KvService's key derivation).
//
// This header is deployment-layer vocabulary, like types/: protocol code
// (core/, baselines/, client/, app/) never includes it — groups reach the
// protocol only as the opaque Transaction::group tag (enforced by the
// prestige_lint layering rule).

#ifndef PRESTIGE_SHARD_ROUTER_H_
#define PRESTIGE_SHARD_ROUTER_H_

#include <cstdint>
#include <string>

#include "app/kv_service.h"
#include "types/ids.h"
#include "types/transaction.h"

namespace prestige {
namespace shard {

/// Hash-partitions u64 routing keys over `num_groups` consensus groups.
class Router {
 public:
  /// Default mixing salt: shared by every layer of a deployment so the
  /// generator-side and checker-side mappings agree.
  static constexpr uint64_t kDefaultSalt = 0x5ca1ab1e0ddba11ULL;

  explicit Router(uint32_t num_groups, uint64_t salt = kDefaultSalt)
      : num_groups_(num_groups == 0 ? 1 : num_groups), salt_(salt) {}

  uint32_t num_groups() const { return num_groups_; }
  uint64_t salt() const { return salt_; }

  /// Owning group of `key`. SplitMix64-style avalanche then modulo, so
  /// adjacent keys (and zipfian head ranks) spread across groups.
  types::GroupId GroupForKey(uint64_t key) const {
    return static_cast<types::GroupId>(Mix(key ^ salt_) % num_groups_);
  }

  /// The key a transaction routes on: the KV key when the command decodes
  /// as a Put/Get, the fingerprint otherwise (see header comment).
  static uint64_t RoutingKey(const types::Transaction& tx) {
    const std::vector<uint8_t>& cmd = tx.command;
    if (!cmd.empty()) {
      if (cmd[0] == app::kv::kPut && cmd.size() == 17) {
        return app::kv::ReadU64(cmd.data() + 1);
      }
      if (cmd[0] == app::kv::kGet && cmd.size() == 9) {
        return app::kv::ReadU64(cmd.data() + 1);
      }
    }
    return tx.fingerprint;
  }

  /// Owning group of a transaction's routing key.
  types::GroupId GroupForTransaction(const types::Transaction& tx) const {
    return GroupForKey(RoutingKey(tx));
  }

 private:
  static uint64_t Mix(uint64_t z) {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  uint32_t num_groups_;
  uint64_t salt_;
};

/// Checks one committed transaction against the router's assignment:
/// `group` is the consensus group whose chain carries it. Returns true
/// when consistent; otherwise fills `violation` with a description. Used
/// per-block by the harness's cross-group safety sweep and directly
/// unit-testable on raw transactions.
inline bool VerifyRoutingAssignment(const Router& router,
                                    types::GroupId group,
                                    const types::Transaction& tx,
                                    std::string* violation) {
  const uint64_t key = Router::RoutingKey(tx);
  const types::GroupId owner = router.GroupForKey(key);
  if (owner != group) {
    *violation = "transaction with routing key " + std::to_string(key) +
                 " committed in group " + std::to_string(group) +
                 " but the router assigns it to group " +
                 std::to_string(owner);
    return false;
  }
  if (tx.group != group) {
    *violation = "transaction with routing key " + std::to_string(key) +
                 " committed in group " + std::to_string(group) +
                 " but was stamped for group " + std::to_string(tx.group);
    return false;
  }
  return true;
}

}  // namespace shard
}  // namespace prestige

#endif  // PRESTIGE_SHARD_ROUTER_H_
