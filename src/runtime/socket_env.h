// SocketRuntime: hosts runtime::Nodes on real OS threads with real UDP
// transport — the deployment backend behind the prestige_node daemon and
// multi-process clusters.
//
// Where ThreadedRuntime connects its per-node event loops through
// in-process queues, SocketRuntime gives every node a bound, non-blocking
// UDP socket and speaks the net/ framing protocol (net/frame.h) over it:
// Send serializes the message (net/wire.h), splits it into checksummed
// datagram fragments, and writes them straight to the destination's
// address from the address book. This works identically whether the
// destination lives in the same process, another process on this host, or
// another machine — all traffic crosses the kernel's network stack.
//
// Design:
//   * one event-loop thread per local node: poll(2) over the node's UDP
//     socket and a wake pipe, with the timeout clamped to the earliest
//     pending timer deadline. All callbacks of a node run on its loop
//     thread, preserving the single-threaded-per-node Env contract;
//   * hardened receive path: datagrams pass through FrameAssembler
//     (header/length/checksum validation, bounded reassembly) and then the
//     bounds-checked wire decoder. Malformed input at either layer becomes
//     a counted drop (see net::FrameCounters), never UB or a crash;
//   * messages with no wire form (e.g. client::SubmitRequestMsg, which
//     carries a closure) fall back to an in-process mailbox when the
//     destination node lives in this runtime, and are counted and dropped
//     otherwise — such messages are harness-internal by construction;
//   * per-node RNG streams derived from (seed, node id) alone, so every
//     process of a deployment derives the same stream for a given node
//     without coordinating registration order;
//   * monotonic wall-clock time, epoch at Start(), same as the threaded
//     backend.
//
// Delivery is UDP: unreliable and unordered. The protocols already tolerate
// loss (client retransmission, view-change timeouts), which is exactly what
// this backend exists to exercise. The framing header's source id is
// *claimed*, not authenticated at the transport layer — authentication is
// the job of the message-level MACs the replicas verify.
//
// Lifecycle: construct → AddNode each local node (binds its socket
// immediately; port 0 picks a free port) → SetPeer for every remote id →
// Start() → ... → Stop() signals and joins. After Stop returns, node state
// and counters may be inspected from the caller's thread.

#ifndef PRESTIGE_RUNTIME_SOCKET_ENV_H_
#define PRESTIGE_RUNTIME_SOCKET_ENV_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/address.h"
#include "net/frame.h"
#include "net/socket.h"
#include "runtime/env.h"

namespace prestige {
namespace runtime {

/// The socket backend: per-node event loops joined by real UDP datagrams.
class SocketRuntime {
 public:
  /// `seed` feeds the per-node RNG derivation; every process in a
  /// deployment must use the same seed.
  explicit SocketRuntime(uint64_t seed);
  ~SocketRuntime();

  SocketRuntime(const SocketRuntime&) = delete;
  SocketRuntime& operator=(const SocketRuntime&) = delete;

  /// Registers `node` (non-owning; must outlive the runtime) under the
  /// deployment-global `id`, binds a UDP socket to `bind_addr` (port 0 =
  /// kernel-assigned), and publishes the bound address in the peer book.
  /// Must precede Start(). Returns false (with `error`) on bind failure or
  /// duplicate id.
  bool AddNode(Node* node, NodeId id, const net::SockAddr& bind_addr,
               std::string* error);

  /// Publishes the data address of a node hosted elsewhere. Must precede
  /// Start(); later calls for an id overwrite earlier ones.
  void SetPeer(NodeId id, const net::SockAddr& addr);

  /// The bound address of a local node (valid after AddNode), or a default
  /// SockAddr for unknown ids.
  net::SockAddr local_addr(NodeId id) const;

  /// Marks the clock epoch and spawns one event-loop thread per local
  /// node; each loop runs its node's OnStart first.
  void Start();

  /// Signals every loop to exit and joins the threads. Pending datagrams
  /// and timers are discarded. Idempotent; also called by the destructor.
  void Stop();

  bool started() const { return started_; }
  size_t num_nodes() const { return nodes_.size(); }

  /// Microseconds of wall-clock time since Start().
  util::TimeMicros Now() const;

  /// Messages handed to OnMessage across all local nodes so far.
  uint64_t messages_delivered() const {
    return delivered_.load(std::memory_order_relaxed);
  }

  /// Frame-level counters of one local node (send + receive directions
  /// merged). Call after Stop() for exact totals.
  net::FrameCounters node_net_stats(NodeId id) const;

  /// Sum of node_net_stats over all local nodes.
  net::FrameCounters net_stats() const;

 private:
  struct NodeState;

  /// Env implementation handed to each node.
  class NodeEnv final : public Env {
   public:
    NodeEnv(SocketRuntime* runtime, NodeState* state, NodeId id,
            util::Rng rng)
        : runtime_(runtime), state_(state), id_(id), rng_(rng) {}

    NodeId id() const override { return id_; }
    void Send(NodeId to, MessagePtr msg) override;
    void Send(const std::vector<NodeId>& targets, MessagePtr msg) override;
    TimerId SetTimer(util::DurationMicros delay, uint64_t tag) override;
    void CancelTimer(TimerId timer) override;
    void CancelAllTimers() override;
    util::TimeMicros Now() const override;
    util::Rng* rng() override { return &rng_; }

   private:
    SocketRuntime* runtime_;
    NodeState* state_;
    NodeId id_;
    util::Rng rng_;
  };

  struct Inbound {
    NodeId from;
    MessagePtr msg;
  };

  /// Everything one local node's loop owns. The local mailbox is guarded
  /// by `mu`; socket, frame writer, counters, and timer state are touched
  /// only by the loop thread (Env calls are only legal from the owning
  /// node's callbacks).
  struct NodeState {
    ~NodeState();

    Node* node = nullptr;
    NodeId id = 0;
    std::unique_ptr<NodeEnv> env;

    net::UdpSocket socket;
    std::unique_ptr<net::FrameWriter> writer;
    std::unique_ptr<net::FrameAssembler> assembler;
    net::FrameCounters send_counters;

    /// Wake pipe: Stop() and cross-thread local deliveries write one byte
    /// to pop the loop out of poll(2).
    int wake_read = -1;
    int wake_write = -1;

    // Local mailbox for messages with no wire form (cross-thread,
    // guarded by mu).
    std::mutex mu;
    std::deque<Inbound> mailbox;
    std::atomic<bool> stop{false};

    // Timer service (loop-thread only).
    TimerId next_timer_id = 1;
    std::unordered_set<TimerId> live_timers;
    std::multimap<util::TimeMicros, std::pair<TimerId, uint64_t>> timer_queue;

    std::thread thread;
  };

  /// Serializes + frames + transmits, or falls back to the local mailbox
  /// for unserializable payloads. Runs on `from`'s loop thread.
  void SendFrom(NodeState* from, NodeId to, const MessagePtr& msg);
  void Wake(NodeState* state);
  void RunLoop(NodeState* state);
  /// Fires every due timer of `state`; returns the next pending deadline
  /// or -1 when no timer is armed.
  util::TimeMicros FireDueTimers(NodeState* state);
  NodeState* FindLocal(NodeId id) const;

  uint64_t seed_;
  bool started_ = false;
  bool stopped_ = false;
  std::chrono::steady_clock::time_point epoch_;
  std::atomic<uint64_t> delivered_{0};
  std::vector<std::unique_ptr<NodeState>> nodes_;
  std::unordered_map<NodeId, NodeState*> local_by_id_;
  std::map<NodeId, net::SockAddr> peers_;
};

}  // namespace runtime
}  // namespace prestige

#endif  // PRESTIGE_RUNTIME_SOCKET_ENV_H_
