// The runtime abstraction layer: protocol code's only window onto its
// execution substrate.
//
// A protocol node (PrestigeReplica, the baselines, client pools) is a
// runtime::Node driven entirely through callbacks and a narrow
// runtime::Env it is bound to. Env bundles the four substrate services:
//
//   * Transport     — Send(to, msg) / Send(targets, msg);
//   * TimerService  — SetTimer(delay, tag) / CancelTimer / CancelAllTimers,
//                     tags packed per util/timer_tag.h;
//   * Clock         — Now(), microseconds since the run began;
//   * RNG           — rng(), a per-node deterministic stream forked from
//                     the run seed.
//
// Two backends implement Env:
//   * runtime::SimEnv (sim_env.h) hosts nodes on the deterministic
//     discrete-event simulator — virtual time, modelled network costs,
//     bit-for-bit reproducible runs;
//   * runtime::ThreadedRuntime (threaded_env.h) hosts each node on its own
//     OS thread — wall-clock time, in-process loopback transport with real
//     queues, true concurrency.
//
// The contract every backend upholds (and protocol code relies on):
//   * callbacks of one node never run concurrently with each other — a
//     node is single-threaded from its own point of view;
//   * SetTimer/CancelTimer are only called from the owning node's
//     callbacks; timer ids are never reused within a run, so cancelling an
//     already-fired id is a harmless no-op;
//   * messages handed to Send are immutable from that point on — a
//     broadcast may deliver the same shared object to many receivers,
//     concurrently under the threaded backend;
//   * delivery is not reliable or ordered unless the backend says so.

#ifndef PRESTIGE_RUNTIME_ENV_H_
#define PRESTIGE_RUNTIME_ENV_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "runtime/message.h"
#include "util/random.h"
#include "util/time.h"
#include "util/timer_tag.h"

namespace prestige {
namespace runtime {

/// Index of a node within one deployment. Replicas and client pools share
/// the id space; the harness assigns ids in registration order.
using NodeId = uint32_t;

/// Handle to a pending timer; cancellable, never reused within a run.
using TimerId = uint64_t;

/// The environment interface a node speaks to. One Env instance per node;
/// it outlives every callback of the node it serves.
class Env {
 public:
  virtual ~Env() = default;

  /// This node's id in the deployment.
  virtual NodeId id() const = 0;

  // ------------------------------------------------------------ Transport

  /// Sends `msg` to a single node (self-sends allowed).
  virtual void Send(NodeId to, MessagePtr msg) = 0;

  /// Sends one copy of `msg` to every id in `targets` (may include self).
  /// Cost-modelling backends serialize the copies back-to-back — the
  /// leader's O(n) fan-out cost.
  virtual void Send(const std::vector<NodeId>& targets, MessagePtr msg) = 0;

  // --------------------------------------------------------- TimerService

  /// Arms a one-shot timer: OnTimer(tag) fires after `delay` unless the
  /// returned id is cancelled first. Tags follow the util/timer_tag.h
  /// packing (16-bit kind, 48-bit payload).
  virtual TimerId SetTimer(util::DurationMicros delay, uint64_t tag) = 0;

  /// Cancels a pending timer; firing is suppressed if it has not fired
  /// yet. Stale (already-fired) ids are ignored.
  virtual void CancelTimer(TimerId timer) = 0;

  /// Cancels every pending timer of this node.
  virtual void CancelAllTimers() = 0;

  // ---------------------------------------------------------------- Clock

  /// Microseconds since the run began — virtual under SimEnv, monotonic
  /// wall clock under ThreadedRuntime.
  virtual util::TimeMicros Now() const = 0;

  // ------------------------------------------------------------------ RNG

  /// This node's deterministic random stream (forked from the run seed in
  /// node-registration order).
  virtual util::Rng* rng() = 0;
};

/// Base class for protocol nodes (replicas, client pools).
///
/// Lifecycle: construct → harness registers the node with a backend (which
/// calls BindEnv) → OnStart once the run begins → OnMessage / OnTimer
/// callbacks until the run ends. The protected helpers mirror Env so
/// subclasses read exactly as they did when they were simulator actors.
class Node {
 public:
  virtual ~Node() = default;

  /// Called once when the run starts.
  virtual void OnStart() {}

  /// Called for every delivered message.
  virtual void OnMessage(NodeId from, const MessagePtr& msg) = 0;

  /// Deferred tail of a split message delivery: the protocol state
  /// transition, run on the node's loop thread in original receive order.
  using VerdictFn = std::function<void()>;

  /// Optional split-verification hook for parallel backends (the threaded
  /// backend's OrderedRunner; the simulator never calls it).
  ///
  /// When a backend delivers messages through a worker pool it invokes
  /// PreVerify *off the loop thread*. The implementation may perform the
  /// CPU-heavy stateless part of handling `msg` — signature/HMAC checks,
  /// quorum-cert verification, PoW checks, digest computation — touching
  /// only immutable state (keys, static config, the message itself) plus
  /// Now()/id(), and return a VerdictFn that finishes the delivery. The
  /// VerdictFn later runs on the loop thread, in receive order, with the
  /// usual exclusive access to node state.
  ///
  /// Returning nullptr declines the split: the backend falls back to a
  /// plain in-order OnMessage on the loop thread. The default declines
  /// everything, so nodes opt in per message type.
  virtual VerdictFn PreVerify(NodeId from, const MessagePtr& msg) {
    (void)from;
    (void)msg;
    return nullptr;
  }

  /// Called when a timer set via SetTimer fires (and was not cancelled).
  virtual void OnTimer(uint64_t tag) { (void)tag; }

  /// Wires the environment; invoked by the backend at registration.
  void BindEnv(Env* env) { env_ = env; }

  Env* env() const { return env_; }
  NodeId id() const { return env_->id(); }

 protected:
  util::TimeMicros Now() const { return env_->Now(); }
  util::Rng* rng() { return env_->rng(); }

  void Send(NodeId to, MessagePtr msg) { env_->Send(to, std::move(msg)); }
  void Send(const std::vector<NodeId>& targets, MessagePtr msg) {
    env_->Send(targets, std::move(msg));
  }

  TimerId SetTimer(util::DurationMicros delay, uint64_t tag) {
    return env_->SetTimer(delay, tag);
  }
  void CancelTimer(TimerId timer) { env_->CancelTimer(timer); }
  void CancelAllTimers() { env_->CancelAllTimers(); }

 private:
  Env* env_ = nullptr;
};

}  // namespace runtime
}  // namespace prestige

#endif  // PRESTIGE_RUNTIME_ENV_H_
