// OrderedRunner: a per-node worker pool that parallelizes the CPU-heavy
// *prologue* of message handling while keeping the *epilogue* — the actual
// protocol state transition — single-threaded and in original receive
// order.
//
// The shape follows dsnet's SpinOrderedRunner/taskqueue design: every
// submitted task is stamped with a monotonically increasing sequence
// number; workers execute prologues in whatever order the scheduler
// dictates and park each finished epilogue in a completion slot keyed by
// its sequence number; the owning loop thread then pops epilogues strictly
// from the head sequence, so no state transition ever observes a message
// out of receive order. Unlike dsnet we block on condition variables
// instead of spinning — the pool shares cores with every other node's loop
// on CI runners, and TSan-friendly blocking beats burning a core per
// worker.
//
// Threading contract:
//   * Submit / RunReadyEpilogues / Drain are called only by the owning
//     loop thread;
//   * HasReady may be called from any thread (the loop's wait predicate);
//   * prologues run on pool workers and must touch only immutable or
//     internally synchronized state; epilogues run on the loop thread and
//     may mutate node state freely;
//   * the `wakeup` callback fires on a worker thread whenever the head
//     epilogue becomes runnable — it must make the loop thread re-check
//     HasReady (and must not call back into the runner).
//
// Stop() finishes every already-submitted prologue before joining the
// workers (nothing is abandoned mid-task); call Drain() first when the
// epilogues must run too — the threaded backend does exactly that on
// shutdown.

#ifndef PRESTIGE_RUNTIME_ORDERED_RUNNER_H_
#define PRESTIGE_RUNTIME_ORDERED_RUNNER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

namespace prestige {
namespace runtime {

/// Worker pool with sequence-ordered epilogue delivery.
class OrderedRunner {
 public:
  /// Runs on the loop thread, in receive order. May be empty (no-op).
  using Epilogue = std::function<void()>;
  /// Runs on a worker thread; returns the epilogue to deliver in order.
  using Prologue = std::function<Epilogue()>;

  /// Spawns `num_workers` (>= 1) worker threads. `wakeup` is invoked from
  /// a worker whenever HasReady() transitions to true; pass a callback
  /// that nudges the owning loop out of its wait (may be null for callers
  /// that poll, e.g. tests).
  OrderedRunner(size_t num_workers, std::function<void()> wakeup);

  /// Stops the pool (see Stop()).
  ~OrderedRunner();

  OrderedRunner(const OrderedRunner&) = delete;
  OrderedRunner& operator=(const OrderedRunner&) = delete;

  /// Enqueues a prologue, stamping it with the next sequence number. Loop
  /// thread only.
  void Submit(Prologue prologue);

  /// True when the epilogue for the head sequence number has been produced
  /// and RunReadyEpilogues() would make progress. Any thread.
  bool HasReady() const;

  /// Runs every epilogue that is ready in one contiguous run from the
  /// head sequence number; returns how many ran. Loop thread only.
  size_t RunReadyEpilogues();

  /// Blocks until every submitted task's epilogue has run (in order),
  /// executing them on the calling (loop) thread as they become ready.
  /// Loop thread only.
  void Drain();

  /// Finishes all in-flight and pending prologues, then joins the worker
  /// threads. Epilogues not yet delivered stay queued (use Drain() first
  /// to flush them). Idempotent; also called by the destructor.
  void Stop();

  size_t num_workers() const { return workers_.size(); }

  /// Tasks submitted so far (loop thread's own count; exact).
  uint64_t submitted() const;
  /// Epilogues delivered so far (loop thread's own count; exact).
  uint64_t delivered() const;

 private:
  struct Task {
    uint64_t seq = 0;
    Prologue work;
  };

  void WorkerMain();
  /// Pops the contiguous ready run [head_seq_, ...) under mu_.
  std::vector<Epilogue> TakeReadyLocked();

  std::function<void()> wakeup_;

  mutable std::mutex mu_;
  std::condition_variable task_cv_;   ///< Workers wait for pending work.
  std::condition_variable ready_cv_;  ///< Drain waits for the head epilogue.
  std::deque<Task> pending_;
  /// Finished prologues waiting for their turn: seq -> epilogue. Ordered
  /// map so the contiguous run from head_seq_ pops in one sweep.
  std::map<uint64_t, Epilogue> completed_;
  uint64_t next_seq_ = 0;  ///< Next sequence number to stamp.
  uint64_t head_seq_ = 0;  ///< Next sequence number to deliver.
  bool stop_ = false;

  std::vector<std::thread> workers_;
};

}  // namespace runtime
}  // namespace prestige

#endif  // PRESTIGE_RUNTIME_ORDERED_RUNNER_H_
