#include "runtime/ordered_runner.h"

#include <cassert>
#include <utility>

namespace prestige {
namespace runtime {

OrderedRunner::OrderedRunner(size_t num_workers, std::function<void()> wakeup)
    : wakeup_(std::move(wakeup)) {
  assert(num_workers >= 1 && "OrderedRunner needs at least one worker");
  workers_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this]() { WorkerMain(); });
  }
}

OrderedRunner::~OrderedRunner() { Stop(); }

void OrderedRunner::Submit(Prologue prologue) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    assert(!stop_ && "Submit after Stop()");
    pending_.push_back(Task{next_seq_++, std::move(prologue)});
  }
  task_cv_.notify_one();
}

bool OrderedRunner::HasReady() const {
  std::lock_guard<std::mutex> lock(mu_);
  return !completed_.empty() && completed_.begin()->first == head_seq_;
}

std::vector<OrderedRunner::Epilogue> OrderedRunner::TakeReadyLocked() {
  std::vector<Epilogue> run;
  auto it = completed_.begin();
  while (it != completed_.end() && it->first == head_seq_) {
    run.push_back(std::move(it->second));
    it = completed_.erase(it);
    ++head_seq_;
  }
  return run;
}

size_t OrderedRunner::RunReadyEpilogues() {
  std::vector<Epilogue> run;
  {
    std::lock_guard<std::mutex> lock(mu_);
    run = TakeReadyLocked();
  }
  for (Epilogue& epilogue : run) {
    if (epilogue) epilogue();
  }
  return run.size();
}

void OrderedRunner::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  while (head_seq_ != next_seq_) {
    ready_cv_.wait(lock, [this]() {
      return !completed_.empty() && completed_.begin()->first == head_seq_;
    });
    std::vector<Epilogue> run = TakeReadyLocked();
    lock.unlock();
    for (Epilogue& epilogue : run) {
      if (epilogue) epilogue();
    }
    lock.lock();
  }
}

void OrderedRunner::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
  }
  task_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

uint64_t OrderedRunner::submitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_;
}

uint64_t OrderedRunner::delivered() const {
  std::lock_guard<std::mutex> lock(mu_);
  return head_seq_;
}

void OrderedRunner::WorkerMain() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_cv_.wait(lock, [this]() { return stop_ || !pending_.empty(); });
      // On stop, finish whatever was already submitted before exiting —
      // abandoning a stamped task would wedge every later epilogue.
      if (pending_.empty()) return;
      task = std::move(pending_.front());
      pending_.pop_front();
    }
    Epilogue epilogue = task.work ? task.work() : Epilogue();
    bool head_ready = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      completed_.emplace(task.seq, std::move(epilogue));
      head_ready = (task.seq == head_seq_);
      if (head_ready) ready_cv_.notify_all();
    }
    // Outside mu_: the wakeup typically takes the loop's mailbox mutex,
    // and holding both would order runner-lock -> loop-lock against the
    // loop thread's loop-lock -> runner-lock (HasReady in its predicate).
    if (head_ready && wakeup_) wakeup_();
  }
}

}  // namespace runtime
}  // namespace prestige
