// ThreadedRuntime: hosts runtime::Nodes on real OS threads and wall-clock
// time — the first backend that executes the protocols with true
// concurrency instead of a virtual clock.
//
// Design:
//   * one event-loop thread per node. All of a node's callbacks (OnStart,
//     OnMessage, OnTimer) run on that thread, preserving the
//     single-threaded-per-node contract of runtime::Env;
//   * an in-process loopback transport: Send locks the receiver's mailbox,
//     enqueues the shared message, and signals its condition variable —
//     real queues, real contention, no modelled costs;
//   * monotonic-clock timers: each loop sleeps until its earliest pending
//     deadline or the next message, whichever comes first. Timer state is
//     owned by the loop thread (SetTimer/CancelTimer are only legal from
//     the owning node's callbacks), so it needs no locking;
//   * a deterministically forked RNG per node (registration order), though
//     thread scheduling makes whole-run behaviour nondeterministic — this
//     backend measures real throughput/latency; reproducibility is the
//     simulator's job;
//   * optionally, a per-node OrderedRunner worker pool (`workers_per_node`
//     > 0): the loop drains its mailbox into the pool, workers run each
//     message's stateless prologue (Node::PreVerify) in parallel, and the
//     loop thread applies the resulting epilogues in original receive
//     order — state stays single-threaded-per-node while crypto
//     verification scales across cores. With workers_per_node == 0 (the
//     default) the loop calls OnMessage directly, byte-identical to the
//     historical single-thread path.
//
// Delivery is reliable and per-sender FIFO (a std::deque per receiver);
// cross-sender order is whatever the locks arbitrate, which is exactly the
// nondeterminism a real deployment exhibits.
//
// Lifecycle: construct → AddNode each node (before Start) → Start() spawns
// the loops and runs every OnStart on its own thread → ... → Stop() signals
// and joins. After Stop returns, node state may be inspected from the
// caller's thread (join gives the happens-before edge).

#ifndef PRESTIGE_RUNTIME_THREADED_ENV_H_
#define PRESTIGE_RUNTIME_THREADED_ENV_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_set>
#include <vector>

#include "runtime/env.h"
#include "runtime/ordered_runner.h"

namespace prestige {
namespace runtime {

/// The threaded backend: a set of per-node event loops plus the loopback
/// transport connecting them.
class ThreadedRuntime {
 public:
  /// `seed` feeds the per-node RNG forks (registration order), mirroring
  /// the simulator's seeding discipline. `workers_per_node` > 0 gives each
  /// node an OrderedRunner pool of that many threads for parallel message
  /// prologues; 0 keeps the classic one-thread-per-node path.
  explicit ThreadedRuntime(uint64_t seed, uint32_t workers_per_node = 0);
  ~ThreadedRuntime();

  ThreadedRuntime(const ThreadedRuntime&) = delete;
  ThreadedRuntime& operator=(const ThreadedRuntime&) = delete;

  /// Registers `node` (non-owning; must outlive the runtime) and binds its
  /// Env. Ids are assigned in call order. Must precede Start().
  NodeId AddNode(Node* node);

  /// Marks the clock epoch and spawns one event-loop thread per node; each
  /// loop runs its node's OnStart first.
  void Start();

  /// Signals every loop to exit and joins the threads. Pending messages
  /// and timers are discarded. Idempotent; also called by the destructor.
  void Stop();

  bool started() const { return started_; }
  size_t num_nodes() const { return nodes_.size(); }
  uint32_t workers_per_node() const { return workers_per_node_; }

  /// Microseconds of wall-clock time since Start().
  util::TimeMicros Now() const;

  /// Total messages taken off all mailboxes so far. Exact at any moment
  /// (single atomic counter), monotone while running.
  uint64_t messages_delivered() const {
    return delivered_.load(std::memory_order_relaxed);
  }

 private:
  struct NodeState;

  /// Env implementation handed to each node.
  class NodeEnv final : public Env {
   public:
    NodeEnv(ThreadedRuntime* runtime, NodeState* state, NodeId id,
            util::Rng rng)
        : runtime_(runtime), state_(state), id_(id), rng_(rng) {}

    NodeId id() const override { return id_; }
    void Send(NodeId to, MessagePtr msg) override;
    void Send(const std::vector<NodeId>& targets, MessagePtr msg) override;
    TimerId SetTimer(util::DurationMicros delay, uint64_t tag) override;
    void CancelTimer(TimerId timer) override;
    void CancelAllTimers() override;
    util::TimeMicros Now() const override;
    util::Rng* rng() override { return &rng_; }

   private:
    ThreadedRuntime* runtime_;
    NodeState* state_;
    NodeId id_;
    util::Rng rng_;
  };

  struct Inbound {
    NodeId from;
    MessagePtr msg;
  };

  /// Everything one node's loop owns. Mailbox fields are guarded by `mu`;
  /// timer fields are touched only by the loop thread.
  struct NodeState {
    Node* node = nullptr;
    std::unique_ptr<NodeEnv> env;

    // Mailbox (cross-thread, guarded by mu).
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Inbound> inbox;
    bool stop = false;

    /// Prologue worker pool (null when workers_per_node == 0). Created in
    /// Start(), drained and joined by the loop thread on shutdown.
    std::unique_ptr<OrderedRunner> runner;

    // Timer service (loop-thread only).
    TimerId next_timer_id = 1;
    std::unordered_set<TimerId> live_timers;
    /// deadline (runtime micros) -> (timer id, tag); multimap keeps equal
    /// deadlines in arming order.
    std::multimap<util::TimeMicros, std::pair<TimerId, uint64_t>> timer_queue;

    std::thread thread;
  };

  void Post(NodeId to, NodeId from, const MessagePtr& msg);
  void RunLoop(NodeState* state);
  /// Fires every due timer of `state`; returns the next pending deadline
  /// or -1 when no timer is armed.
  util::TimeMicros FireDueTimers(NodeState* state);

  uint64_t seed_;
  uint32_t workers_per_node_;
  util::Rng root_rng_;
  bool started_ = false;
  bool stopped_ = false;
  std::chrono::steady_clock::time_point epoch_;
  std::atomic<uint64_t> delivered_{0};
  std::vector<std::unique_ptr<NodeState>> nodes_;
};

}  // namespace runtime
}  // namespace prestige

#endif  // PRESTIGE_RUNTIME_THREADED_ENV_H_
