// SimEnv: hosts a runtime::Node on the deterministic discrete-event
// simulator.
//
// One SimEnv per node. It is the sim::Actor the Simulator/Network see
// (callbacks forward to the node) and the runtime::Env the node speaks to
// (services delegate to the actor machinery). Because the timer
// bookkeeping, RNG forking point, and send paths are literally the
// pre-refactor Actor ones, a run through SimEnv is bit-identical — event
// order, virtual-time metrics, hash counts — to the old direct-actor
// wiring for the same seed (asserted by tests/runtime_env_test.cc and the
// BENCH JSON determinism checks).
//
// Wiring order matters for reproducibility: Simulator::AddActor forks the
// node's RNG stream from the root seed, so nodes must be registered in a
// deterministic order (the harness registers replicas first, then client
// pools).

#ifndef PRESTIGE_RUNTIME_SIM_ENV_H_
#define PRESTIGE_RUNTIME_SIM_ENV_H_

#include <utility>

#include "runtime/env.h"
#include "sim/actor.h"

namespace prestige {
namespace runtime {

/// Adapter binding one Node to one slot of a simulation.
///
/// Lifecycle: SimEnv env(&node); sim.AddActor(&env); env.AttachNetwork(&net);
/// — then schedule node.OnStart() and run the simulator. The SimEnv must
/// outlive the simulation, like any actor.
class SimEnv final : public sim::Actor, public Env {
 public:
  explicit SimEnv(Node* node) : node_(node) { node_->BindEnv(this); }

  Node* node() const { return node_; }

  // ------------------------------------------------- sim::Actor interface
  void OnStart() override { node_->OnStart(); }
  void OnMessage(sim::ActorId from, const sim::MessagePtr& msg) override {
    node_->OnMessage(from, msg);
  }
  void OnTimer(uint64_t tag) override { node_->OnTimer(tag); }

  // ----------------------------------------------- runtime::Env interface
  NodeId id() const override { return sim::Actor::id(); }

  void Send(NodeId to, MessagePtr msg) override {
    sim::Actor::Send(to, std::move(msg));
  }
  void Send(const std::vector<NodeId>& targets, MessagePtr msg) override {
    sim::Actor::Send(targets, std::move(msg));
  }

  TimerId SetTimer(util::DurationMicros delay, uint64_t tag) override {
    return sim::Actor::SetTimer(delay, tag);
  }
  void CancelTimer(TimerId timer) override { sim::Actor::CancelTimer(timer); }
  void CancelAllTimers() override { sim::Actor::CancelAllTimers(); }

  util::TimeMicros Now() const override { return sim::Actor::Now(); }
  util::Rng* rng() override { return sim::Actor::rng(); }

 private:
  Node* node_;
};

}  // namespace runtime
}  // namespace prestige

#endif  // PRESTIGE_RUNTIME_SIM_ENV_H_
