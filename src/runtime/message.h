// Base type for everything carried between nodes, independent of the
// execution backend.
//
// A message describes its own wire-level footprint (size, signature
// verifications, protocol units) so that *cost-modelling* backends — the
// discrete-event simulator's Network — can charge bandwidth and CPU for
// it. Real-time backends (runtime::ThreadedRuntime) deliver the same
// objects through in-process queues and ignore the cost metadata.
//
// Historically this lived in sim/message.h; it moved here when the
// runtime abstraction layer was extracted so that protocol code depends
// only on runtime/, never on the simulator. sim/message.h re-exports
// these types under the old names for the simulation substrate.

#ifndef PRESTIGE_RUNTIME_MESSAGE_H_
#define PRESTIGE_RUNTIME_MESSAGE_H_

#include <cstdint>
#include <memory>

namespace prestige {
namespace runtime {

/// Abstract network message.
///
/// Backends never inspect payloads; cost-modelling ones only need the
/// physical wire size (for bandwidth serialization), the number of
/// signature verifications the receiver performs (for the CPU model), and
/// a unit count for aggregate messages (a ClientBatch representing g
/// independent client proposals costs g base processing units — see
/// DESIGN.md §4 on client aggregation).
///
/// Messages are immutable once handed to Env::Send: a broadcast delivers
/// the same shared object to every receiver, and under the threaded
/// backend those receivers run concurrently.
class NetMessage {
 public:
  virtual ~NetMessage() = default;

  /// Physical bytes this message occupies on the wire.
  virtual size_t WireSize() const = 0;

  /// Signature/QC verifications the receiver performs on arrival.
  virtual int NumSigVerifies() const { return 0; }

  /// Independent protocol units folded into this message (>= 1).
  virtual int CostUnits() const { return 1; }

  /// Message name for traces.
  virtual const char* Name() const = 0;
};

using MessagePtr = std::shared_ptr<const NetMessage>;

}  // namespace runtime
}  // namespace prestige

#endif  // PRESTIGE_RUNTIME_MESSAGE_H_
