#include "runtime/socket_env.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cassert>

#include "net/wire.h"

namespace prestige {
namespace runtime {
namespace {

/// Datagrams drained per poll wakeup before timers get another look.
constexpr int kRecvBurst = 64;
/// Receive buffer: larger than kMaxDatagramBytes so oversized hostile
/// datagrams arrive untruncated and die in header validation instead of
/// masquerading as shorter frames.
constexpr size_t kRecvBufBytes = 65536;
/// Poll ceiling when no timer is armed; wake pipe handles prompt wakeups.
constexpr int kIdlePollMs = 100;

bool MakeNonBlockingPipe(int* read_fd, int* write_fd) {
  int fds[2];
  if (::pipe(fds) != 0) return false;
  for (int fd : fds) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
      ::close(fds[0]);
      ::close(fds[1]);
      return false;
    }
  }
  *read_fd = fds[0];
  *write_fd = fds[1];
  return true;
}

}  // namespace

SocketRuntime::NodeState::~NodeState() {
  if (wake_read >= 0) ::close(wake_read);
  if (wake_write >= 0) ::close(wake_write);
}

SocketRuntime::SocketRuntime(uint64_t seed)
    : seed_(seed), epoch_(std::chrono::steady_clock::now()) {}

SocketRuntime::~SocketRuntime() { Stop(); }

bool SocketRuntime::AddNode(Node* node, NodeId id,
                            const net::SockAddr& bind_addr,
                            std::string* error) {
  assert(!started_ && "AddNode must precede Start()");
  if (local_by_id_.count(id) > 0) {
    if (error != nullptr) {
      *error = "duplicate local node id " + std::to_string(id);
    }
    return false;
  }
  auto state = std::make_unique<NodeState>();
  state->node = node;
  state->id = id;
  if (!state->socket.Bind(bind_addr, error)) return false;
  if (!MakeNonBlockingPipe(&state->wake_read, &state->wake_write)) {
    if (error != nullptr) *error = "wake pipe creation failed";
    return false;
  }
  state->writer = std::make_unique<net::FrameWriter>(id);
  state->assembler = std::make_unique<net::FrameAssembler>(id);
  // RNG derived from (seed, id) alone — unlike the registration-order fork
  // of the other backends, every process of a deployment reproduces the
  // same stream for a given node independently.
  state->env = std::make_unique<NodeEnv>(
      this, state.get(), id,
      util::Rng(seed_ ^ (0x9e3779b97f4a7c15ULL * (uint64_t{id} + 1))));
  node->BindEnv(state->env.get());
  peers_[id] = state->socket.local_addr();
  local_by_id_[id] = state.get();
  nodes_.push_back(std::move(state));
  return true;
}

void SocketRuntime::SetPeer(NodeId id, const net::SockAddr& addr) {
  assert(!started_ && "SetPeer must precede Start()");
  peers_[id] = addr;
}

net::SockAddr SocketRuntime::local_addr(NodeId id) const {
  NodeState* s = FindLocal(id);
  return s == nullptr ? net::SockAddr{} : s->socket.local_addr();
}

void SocketRuntime::Start() {
  assert(!started_);
  started_ = true;
  stopped_ = false;
  epoch_ = std::chrono::steady_clock::now();
  for (auto& state : nodes_) {
    NodeState* s = state.get();
    s->thread = std::thread([this, s]() { RunLoop(s); });
  }
}

void SocketRuntime::Stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  for (auto& state : nodes_) {
    state->stop.store(true, std::memory_order_relaxed);
    Wake(state.get());
  }
  for (auto& state : nodes_) {
    if (state->thread.joinable()) state->thread.join();
  }
}

util::TimeMicros SocketRuntime::Now() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

net::FrameCounters SocketRuntime::node_net_stats(NodeId id) const {
  net::FrameCounters total;
  NodeState* s = FindLocal(id);
  if (s != nullptr) {
    total.MergeFrom(s->send_counters);
    total.MergeFrom(s->assembler->counters());
  }
  return total;
}

net::FrameCounters SocketRuntime::net_stats() const {
  net::FrameCounters total;
  for (const auto& state : nodes_) {
    total.MergeFrom(state->send_counters);
    total.MergeFrom(state->assembler->counters());
  }
  return total;
}

SocketRuntime::NodeState* SocketRuntime::FindLocal(NodeId id) const {
  const auto it = local_by_id_.find(id);
  return it == local_by_id_.end() ? nullptr : it->second;
}

void SocketRuntime::Wake(NodeState* s) {
  const uint8_t byte = 1;
  // A full pipe already guarantees a pending wakeup; EAGAIN is fine.
  (void)!::write(s->wake_write, &byte, 1);
}

void SocketRuntime::SendFrom(NodeState* from, NodeId to,
                             const MessagePtr& msg) {
  std::vector<uint8_t> payload;
  if (!net::EncodeMessage(*msg, &payload)) {
    // No wire form: deliverable only within this process.
    NodeState* target = FindLocal(to);
    if (target == nullptr) {
      ++from->send_counters.unserializable_drops;
      return;
    }
    {
      std::lock_guard<std::mutex> lock(target->mu);
      target->mailbox.push_back(Inbound{from->id, msg});
    }
    Wake(target);
    return;
  }
  const auto peer = peers_.find(to);
  if (peer == peers_.end()) {
    ++from->send_counters.send_errors;
    return;
  }
  // Every copy — self-sends and co-hosted destinations included — goes
  // through the kernel, so one process per node and n nodes per process
  // exercise the identical transport path.
  for (const std::vector<uint8_t>& frame : from->writer->Split(to, payload)) {
    if (from->socket.SendTo(peer->second, frame.data(), frame.size())) {
      ++from->send_counters.frames_sent;
      from->send_counters.bytes_sent += frame.size();
    } else {
      ++from->send_counters.send_errors;
    }
  }
}

util::TimeMicros SocketRuntime::FireDueTimers(NodeState* s) {
  for (;;) {
    auto it = s->timer_queue.begin();
    if (it == s->timer_queue.end()) return -1;
    if (it->first > Now()) return it->first;
    const auto [timer_id, tag] = it->second;
    s->timer_queue.erase(it);
    if (s->live_timers.erase(timer_id) > 0) {
      s->node->OnTimer(tag);
    }
  }
}

void SocketRuntime::RunLoop(NodeState* s) {
  s->node->OnStart();
  std::vector<uint8_t> buf(kRecvBufBytes);
  std::vector<net::FrameAssembler::Complete> completes;
  std::deque<Inbound> local;
  uint8_t drain[64];
  while (!s->stop.load(std::memory_order_relaxed)) {
    // Fire whatever is due, then learn how long poll may sleep.
    const util::TimeMicros next_deadline = FireDueTimers(s);
    int timeout_ms = kIdlePollMs;
    if (next_deadline >= 0) {
      const util::TimeMicros now = Now();
      timeout_ms =
          next_deadline <= now
              ? 0
              : static_cast<int>(std::min<int64_t>(
                    (next_deadline - now + 999) / 1000, kIdlePollMs));
    }
    const int fds[2] = {s->socket.fd(), s->wake_read};
    bool readable[2] = {false, false};
    net::PollSockets(fds, readable, 2, timeout_ms);
    if (s->stop.load(std::memory_order_relaxed)) return;

    if (readable[1]) {
      while (::read(s->wake_read, drain, sizeof(drain)) > 0) {
      }
    }
    {
      std::lock_guard<std::mutex> lock(s->mu);
      local.swap(s->mailbox);
    }
    for (Inbound& in : local) {
      delivered_.fetch_add(1, std::memory_order_relaxed);
      s->node->OnMessage(in.from, in.msg);
    }
    local.clear();

    if (!readable[0]) continue;
    for (int burst = 0; burst < kRecvBurst; ++burst) {
      const long got = s->socket.RecvFrom(buf.data(), buf.size());
      if (got < 0) break;
      completes.clear();
      s->assembler->Accept(buf.data(), static_cast<size_t>(got), &completes);
      for (net::FrameAssembler::Complete& c : completes) {
        const MessagePtr msg =
            net::DecodeMessage(c.payload.data(), c.payload.size());
        if (msg == nullptr) {
          // Frame layer was satisfied but the body is malformed: counted
          // drop, nothing applied.
          ++s->assembler->counters().decode_drops;
          continue;
        }
        delivered_.fetch_add(1, std::memory_order_relaxed);
        s->node->OnMessage(c.src, msg);
      }
    }
  }
}

// ------------------------------------------------------------------ NodeEnv

void SocketRuntime::NodeEnv::Send(NodeId to, MessagePtr msg) {
  runtime_->SendFrom(state_, to, msg);
}

void SocketRuntime::NodeEnv::Send(const std::vector<NodeId>& targets,
                                  MessagePtr msg) {
  for (NodeId to : targets) {
    runtime_->SendFrom(state_, to, msg);
  }
}

TimerId SocketRuntime::NodeEnv::SetTimer(util::DurationMicros delay,
                                         uint64_t tag) {
  const TimerId timer = state_->next_timer_id++;
  state_->live_timers.insert(timer);
  const util::TimeMicros deadline =
      runtime_->Now() + (delay < 0 ? 0 : delay);
  state_->timer_queue.emplace(deadline, std::make_pair(timer, tag));
  return timer;
}

void SocketRuntime::NodeEnv::CancelTimer(TimerId timer) {
  state_->live_timers.erase(timer);
}

void SocketRuntime::NodeEnv::CancelAllTimers() {
  state_->live_timers.clear();
}

util::TimeMicros SocketRuntime::NodeEnv::Now() const {
  return runtime_->Now();
}

}  // namespace runtime
}  // namespace prestige
