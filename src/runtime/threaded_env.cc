#include "runtime/threaded_env.h"

#include <cassert>

namespace prestige {
namespace runtime {

ThreadedRuntime::ThreadedRuntime(uint64_t seed, uint32_t workers_per_node)
    : seed_(seed),
      workers_per_node_(workers_per_node),
      root_rng_(seed),
      epoch_(std::chrono::steady_clock::now()) {}

ThreadedRuntime::~ThreadedRuntime() { Stop(); }

NodeId ThreadedRuntime::AddNode(Node* node) {
  assert(!started_ && "AddNode must precede Start()");
  const NodeId id = static_cast<NodeId>(nodes_.size());
  auto state = std::make_unique<NodeState>();
  state->node = node;
  // Same forking discipline as Simulator::AddActor: one child stream per
  // node, drawn from the root in registration order.
  state->env = std::make_unique<NodeEnv>(this, state.get(), id,
                                         root_rng_.Fork());
  node->BindEnv(state->env.get());
  nodes_.push_back(std::move(state));
  return id;
}

void ThreadedRuntime::Start() {
  assert(!started_);
  started_ = true;
  stopped_ = false;
  epoch_ = std::chrono::steady_clock::now();
  for (auto& state : nodes_) {
    NodeState* s = state.get();
    if (workers_per_node_ > 0) {
      // The wakeup must pass through the mailbox mutex: a bare notify
      // could land between the loop's predicate check (which saw no ready
      // epilogue) and its wait, and be lost.
      s->runner = std::make_unique<OrderedRunner>(workers_per_node_, [s]() {
        { std::lock_guard<std::mutex> lock(s->mu); }
        s->cv.notify_one();
      });
    }
    s->thread = std::thread([this, s]() { RunLoop(s); });
  }
}

void ThreadedRuntime::Stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  for (auto& state : nodes_) {
    {
      std::lock_guard<std::mutex> lock(state->mu);
      state->stop = true;
    }
    state->cv.notify_one();
  }
  for (auto& state : nodes_) {
    if (state->thread.joinable()) state->thread.join();
  }
}

util::TimeMicros ThreadedRuntime::Now() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void ThreadedRuntime::Post(NodeId to, NodeId from, const MessagePtr& msg) {
  if (to >= nodes_.size()) return;
  NodeState* target = nodes_[to].get();
  {
    std::lock_guard<std::mutex> lock(target->mu);
    if (target->stop) return;
    target->inbox.push_back(Inbound{from, msg});
  }
  target->cv.notify_one();
}

util::TimeMicros ThreadedRuntime::FireDueTimers(NodeState* s) {
  for (;;) {
    auto it = s->timer_queue.begin();
    if (it == s->timer_queue.end()) return -1;
    if (it->first > Now()) return it->first;
    const auto [timer_id, tag] = it->second;
    s->timer_queue.erase(it);
    if (s->live_timers.erase(timer_id) > 0) {
      s->node->OnTimer(tag);
    }
  }
}

void ThreadedRuntime::RunLoop(NodeState* s) {
  s->node->OnStart();
  OrderedRunner* runner = s->runner.get();
  std::deque<Inbound> batch;
  for (;;) {
    // Fire whatever is due, then learn how long we may sleep.
    const util::TimeMicros next_deadline = FireDueTimers(s);
    {
      std::unique_lock<std::mutex> lock(s->mu);
      for (;;) {
        if (s->stop) {
          lock.unlock();
          if (runner != nullptr) {
            // Messages already handed to the pool count as delivered:
            // finish their prologues and apply their epilogues in order,
            // then join the workers. Messages still in the inbox are
            // discarded, as on the classic path.
            runner->Drain();
            runner->Stop();
          }
          return;
        }
        if (!s->inbox.empty()) break;
        if (runner != nullptr && runner->HasReady()) break;
        if (next_deadline >= 0) {
          if (Now() >= next_deadline) break;  // Due: fire on next pass.
          s->cv.wait_until(
              lock, epoch_ + std::chrono::microseconds(next_deadline));
          break;  // Re-evaluate timers before sleeping again.
        }
        s->cv.wait(lock);
      }
      // Swap the whole mailbox out — one lock hold, no per-message
      // round-trips (batch is empty here, so this is O(1)).
      batch.swap(s->inbox);
    }
    delivered_.fetch_add(batch.size(), std::memory_order_relaxed);
    if (runner == nullptr) {
      for (Inbound& in : batch) {
        s->node->OnMessage(in.from, in.msg);
      }
    } else {
      // Parallel path: stamp each message into the pool in receive order;
      // workers run the stateless prologue (Node::PreVerify), and the
      // epilogues come back to this thread strictly in stamp order.
      for (Inbound& in : batch) {
        Node* node = s->node;
        const NodeId from = in.from;
        MessagePtr msg = std::move(in.msg);
        runner->Submit(
            [node, from, msg]() -> OrderedRunner::Epilogue {
              OrderedRunner::Epilogue verdict = node->PreVerify(from, msg);
              if (verdict) return verdict;
              // Declined: the whole handler becomes the epilogue, exactly
              // the classic single-thread delivery, just in-order later.
              return [node, from, msg]() { node->OnMessage(from, msg); };
            });
      }
      runner->RunReadyEpilogues();
    }
    batch.clear();
  }
}

// ------------------------------------------------------------------ NodeEnv

void ThreadedRuntime::NodeEnv::Send(NodeId to, MessagePtr msg) {
  runtime_->Post(to, id_, msg);
}

void ThreadedRuntime::NodeEnv::Send(const std::vector<NodeId>& targets,
                                    MessagePtr msg) {
  for (NodeId to : targets) {
    runtime_->Post(to, id_, msg);
  }
}

TimerId ThreadedRuntime::NodeEnv::SetTimer(util::DurationMicros delay,
                                           uint64_t tag) {
  const TimerId timer = state_->next_timer_id++;
  state_->live_timers.insert(timer);
  const util::TimeMicros deadline =
      runtime_->Now() + (delay < 0 ? 0 : delay);
  state_->timer_queue.emplace(deadline, std::make_pair(timer, tag));
  return timer;
}

void ThreadedRuntime::NodeEnv::CancelTimer(TimerId timer) {
  state_->live_timers.erase(timer);
}

void ThreadedRuntime::NodeEnv::CancelAllTimers() {
  state_->live_timers.clear();
}

util::TimeMicros ThreadedRuntime::NodeEnv::Now() const {
  return runtime_->Now();
}

}  // namespace runtime
}  // namespace prestige
