#include "runtime/threaded_env.h"

#include <cassert>

namespace prestige {
namespace runtime {

ThreadedRuntime::ThreadedRuntime(uint64_t seed)
    : seed_(seed), root_rng_(seed), epoch_(std::chrono::steady_clock::now()) {}

ThreadedRuntime::~ThreadedRuntime() { Stop(); }

NodeId ThreadedRuntime::AddNode(Node* node) {
  assert(!started_ && "AddNode must precede Start()");
  const NodeId id = static_cast<NodeId>(nodes_.size());
  auto state = std::make_unique<NodeState>();
  state->node = node;
  // Same forking discipline as Simulator::AddActor: one child stream per
  // node, drawn from the root in registration order.
  state->env = std::make_unique<NodeEnv>(this, state.get(), id,
                                         root_rng_.Fork());
  node->BindEnv(state->env.get());
  nodes_.push_back(std::move(state));
  return id;
}

void ThreadedRuntime::Start() {
  assert(!started_);
  started_ = true;
  stopped_ = false;
  epoch_ = std::chrono::steady_clock::now();
  for (auto& state : nodes_) {
    NodeState* s = state.get();
    s->thread = std::thread([this, s]() { RunLoop(s); });
  }
}

void ThreadedRuntime::Stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  for (auto& state : nodes_) {
    {
      std::lock_guard<std::mutex> lock(state->mu);
      state->stop = true;
    }
    state->cv.notify_one();
  }
  for (auto& state : nodes_) {
    if (state->thread.joinable()) state->thread.join();
  }
}

util::TimeMicros ThreadedRuntime::Now() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

uint64_t ThreadedRuntime::messages_delivered() const {
  uint64_t total = 0;
  for (const auto& state : nodes_) {
    std::lock_guard<std::mutex> lock(state->mu);
    total += state->delivered;
  }
  return total;
}

void ThreadedRuntime::Post(NodeId to, NodeId from, const MessagePtr& msg) {
  if (to >= nodes_.size()) return;
  NodeState* target = nodes_[to].get();
  {
    std::lock_guard<std::mutex> lock(target->mu);
    if (target->stop) return;
    target->inbox.push_back(Inbound{from, msg});
  }
  target->cv.notify_one();
}

util::TimeMicros ThreadedRuntime::FireDueTimers(NodeState* s) {
  for (;;) {
    auto it = s->timer_queue.begin();
    if (it == s->timer_queue.end()) return -1;
    if (it->first > Now()) return it->first;
    const auto [timer_id, tag] = it->second;
    s->timer_queue.erase(it);
    if (s->live_timers.erase(timer_id) > 0) {
      s->node->OnTimer(tag);
    }
  }
}

void ThreadedRuntime::RunLoop(NodeState* s) {
  s->node->OnStart();
  std::vector<Inbound> batch;
  for (;;) {
    // Fire whatever is due, then learn how long we may sleep.
    const util::TimeMicros next_deadline = FireDueTimers(s);
    {
      std::unique_lock<std::mutex> lock(s->mu);
      for (;;) {
        if (s->stop) return;
        if (!s->inbox.empty()) break;
        if (next_deadline >= 0) {
          if (Now() >= next_deadline) break;  // Due: fire on next pass.
          s->cv.wait_until(
              lock, epoch_ + std::chrono::microseconds(next_deadline));
          break;  // Re-evaluate timers before sleeping again.
        }
        s->cv.wait(lock);
      }
      // Drain the whole mailbox in one lock acquisition.
      while (!s->inbox.empty()) {
        batch.push_back(std::move(s->inbox.front()));
        s->inbox.pop_front();
      }
      s->delivered += batch.size();
    }
    for (Inbound& in : batch) {
      s->node->OnMessage(in.from, in.msg);
    }
    batch.clear();
  }
}

// ------------------------------------------------------------------ NodeEnv

void ThreadedRuntime::NodeEnv::Send(NodeId to, MessagePtr msg) {
  runtime_->Post(to, id_, msg);
}

void ThreadedRuntime::NodeEnv::Send(const std::vector<NodeId>& targets,
                                    MessagePtr msg) {
  for (NodeId to : targets) {
    runtime_->Post(to, id_, msg);
  }
}

TimerId ThreadedRuntime::NodeEnv::SetTimer(util::DurationMicros delay,
                                           uint64_t tag) {
  const TimerId timer = state_->next_timer_id++;
  state_->live_timers.insert(timer);
  const util::TimeMicros deadline =
      runtime_->Now() + (delay < 0 ? 0 : delay);
  state_->timer_queue.emplace(deadline, std::make_pair(timer, tag));
  return timer;
}

void ThreadedRuntime::NodeEnv::CancelTimer(TimerId timer) {
  state_->live_timers.erase(timer);
}

void ThreadedRuntime::NodeEnv::CancelAllTimers() {
  state_->live_timers.clear();
}

util::TimeMicros ThreadedRuntime::NodeEnv::Now() const {
  return runtime_->Now();
}

}  // namespace runtime
}  // namespace prestige
