// Simulated network with bandwidth serialization and a receiver CPU model.
//
// Models the resources that dominate BFT throughput in the paper's regime:
//  * sender egress — messages serialize at NIC bandwidth (400 MB/s in the
//    paper), which is what makes the leader's O(n) broadcast the bottleneck;
//  * propagation — per-message latency sampled from a LatencyModel;
//  * receiver CPU — a single-server FIFO queue with a per-message service
//    time (base + per-byte + per-signature-verification), which is what
//    caps transactions/second and produces Fig. 6's saturation elbow.
//
// Fault hooks: node down (crash), directed link cuts, i.i.d. message drops,
// and a FaultPlane (sim/fault.h) for partitions and per-link
// drop/duplicate/reorder/delay degradation.

#ifndef PRESTIGE_SIM_NETWORK_H_
#define PRESTIGE_SIM_NETWORK_H_

#include <cstdint>
#include <set>
#include <vector>

#include "sim/fault.h"
#include "sim/latency.h"
#include "sim/message.h"
#include "sim/simulator.h"
#include "util/random.h"

namespace prestige {
namespace sim {

/// Resource cost constants. Defaults are calibrated so the n=4 peak lands in
/// the paper's ballpark (§6.1); see DESIGN.md §4 and bench/fig06.
struct CostModel {
  /// NIC throughput. 400 MB/s = 400 bytes per microsecond (paper's iperf).
  double bandwidth_bytes_per_us = 400.0;
  /// Fixed CPU cost to handle one protocol unit (syscall + dispatch + hash).
  double proc_base_us = 4.0;
  /// CPU cost per payload byte (deserialize + digest).
  double proc_per_byte_us = 0.002;
  /// CPU cost per signature / QC verification performed by the receiver.
  double verify_sig_us = 18.0;
  /// Fixed cost to hand a self-addressed message to the local handler.
  double self_deliver_us = 1.0;

  /// Service time for one received message.
  util::DurationMicros ProcessingCost(const NetMessage& msg) const;
  /// Wire occupancy time for one sent message.
  util::DurationMicros SerializationCost(const NetMessage& msg) const;
};

/// Counters accumulated over a run.
struct NetworkStats {
  uint64_t messages_sent = 0;
  uint64_t messages_delivered = 0;
  uint64_t messages_dropped = 0;  ///< All losses (incl. cut / fault drops).
  uint64_t bytes_sent = 0;
  // Fault-plane breakdowns (subsets of the counters above).
  uint64_t messages_cut = 0;         ///< Severed by a partition.
  uint64_t messages_fault_dropped = 0;  ///< Lost to a LinkFault drop.
  uint64_t messages_duplicated = 0;  ///< Extra copies delivered.
  uint64_t messages_reordered = 0;   ///< Held back past later traffic.
};

/// Message fabric connecting all actors of one simulation.
class Network {
 public:
  Network(Simulator* sim, LatencyModel latency, CostModel cost);

  /// Queues `msg` from `from` to `to`. Self-sends bypass egress/propagation
  /// but still pay a small local-delivery cost.
  void Send(ActorId from, ActorId to, MessagePtr msg);

  /// Sends one copy of `msg` to every id in `targets` (egress serializes the
  /// copies back-to-back, which is the leader's O(n) fan-out cost).
  void Send(ActorId from, const std::vector<ActorId>& targets, MessagePtr msg);

  /// Crash/recover a node: a down node neither sends nor receives.
  void SetNodeDown(ActorId id, bool down);
  bool IsNodeDown(ActorId id) const { return down_nodes_.count(id) > 0; }

  /// Cuts / restores the directed link from `from` to `to`.
  void SetLinkDown(ActorId from, ActorId to, bool down);

  /// Probability that any individual message is silently lost.
  void SetDropProbability(double p) { drop_probability_ = p; }

  /// Replaces the latency model mid-run (e.g. enabling netem delay).
  void SetLatencyModel(LatencyModel latency) { latency_ = latency; }

  /// Partition / link-degradation state consulted on every send. Runs that
  /// never touch the plane behave exactly as before it existed.
  FaultPlane& fault_plane() { return faults_; }
  const FaultPlane& fault_plane() const { return faults_; }

  /// Sizes the per-actor egress/CPU availability tables for `count` actors
  /// up front. Call once after actor registration (Cluster does): it hoists
  /// the grow-on-demand branch out of every Send/Deliver. Actors added
  /// later still work via the cold growth path.
  void PresizeActors(size_t count);

  const NetworkStats& stats() const { return stats_; }
  const CostModel& cost_model() const { return cost_; }

 private:
  void Deliver(ActorId from, ActorId to, const MessagePtr& msg,
               util::TimeMicros arrival);
  /// Cold path: grows both tables to cover `id` (actor registered after
  /// PresizeActors, or a Network used without a Cluster).
  void GrowActorTables(ActorId id);

  util::TimeMicros& EgressFree(ActorId id) {
    if (egress_free_.size() <= id) GrowActorTables(id);
    return egress_free_[id];
  }
  util::TimeMicros& CpuFree(ActorId id) {
    if (cpu_free_.size() <= id) GrowActorTables(id);
    return cpu_free_[id];
  }

  Simulator* sim_;
  LatencyModel latency_;
  CostModel cost_;
  util::Rng rng_;
  FaultPlane faults_;
  double drop_probability_ = 0.0;
  std::set<ActorId> down_nodes_;
  std::set<std::pair<ActorId, ActorId>> down_links_;
  std::vector<util::TimeMicros> egress_free_;
  std::vector<util::TimeMicros> cpu_free_;
  NetworkStats stats_;
};

}  // namespace sim
}  // namespace prestige

#endif  // PRESTIGE_SIM_NETWORK_H_
