// Base type for everything carried over the simulated network.

#ifndef PRESTIGE_SIM_MESSAGE_H_
#define PRESTIGE_SIM_MESSAGE_H_

#include <cstdint>
#include <memory>

namespace prestige {
namespace sim {

/// Abstract network message.
///
/// The simulator never inspects payloads; it only needs the physical wire
/// size (for bandwidth serialization), the number of signature verifications
/// the receiver performs (for the CPU model), and a unit count for aggregate
/// messages (a ClientBatchProp representing g independent client proposals
/// costs g base processing units — see DESIGN.md §4 on client aggregation).
class NetMessage {
 public:
  virtual ~NetMessage() = default;

  /// Physical bytes this message occupies on the wire.
  virtual size_t WireSize() const = 0;

  /// Signature/QC verifications the receiver performs on arrival.
  virtual int NumSigVerifies() const { return 0; }

  /// Independent protocol units folded into this message (>= 1).
  virtual int CostUnits() const { return 1; }

  /// Message name for traces.
  virtual const char* Name() const = 0;
};

using MessagePtr = std::shared_ptr<const NetMessage>;

}  // namespace sim
}  // namespace prestige

#endif  // PRESTIGE_SIM_MESSAGE_H_
