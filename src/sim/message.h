// Simulation-substrate aliases for the backend-independent message base.
//
// The canonical definition lives in runtime/message.h (the protocol layer
// depends only on runtime/); the simulator's Network keeps using the
// sim:: names it always had.

#ifndef PRESTIGE_SIM_MESSAGE_H_
#define PRESTIGE_SIM_MESSAGE_H_

#include "runtime/message.h"

namespace prestige {
namespace sim {

using NetMessage = runtime::NetMessage;
using MessagePtr = runtime::MessagePtr;

}  // namespace sim
}  // namespace prestige

#endif  // PRESTIGE_SIM_MESSAGE_H_
