#include "sim/simulator.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "sim/actor.h"

namespace prestige {
namespace sim {

void Simulator::ScheduleAt(util::TimeMicros at, EventFn fn) {
  if (at < now_) at = now_;
  if (heap_.empty() && heap_.capacity() == 0) heap_.reserve(256);
  heap_.push_back(Event{at, next_seq_++, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), EventLater{});
}

ActorId Simulator::AddActor(Actor* actor) {
  const ActorId id = static_cast<ActorId>(actors_.size());
  actors_.push_back(actor);
  actor->BindSimulator(this, id);
  return id;
}

bool Simulator::Step() {
  if (heap_.empty()) return false;
  // Fix for the old std::priority_queue implementation: top() is const
  // there, so extracting the closure required copying the whole
  // std::function (one heap allocation + capture copies per event
  // executed). pop_heap + move-from-back extracts by move instead, and
  // also admits the move-only EventFn closure type.
  std::pop_heap(heap_.begin(), heap_.end(), EventLater{});
  Event ev = std::move(heap_.back());
  heap_.pop_back();
  assert(ev.time >= now_);
  now_ = ev.time;
  ++events_executed_;
  ev.fn();
  return true;
}

void Simulator::RunUntil(util::TimeMicros until) {
  while (!heap_.empty() && heap_.front().time <= until) {
    Step();
  }
  if (now_ < until) now_ = until;
}

}  // namespace sim
}  // namespace prestige
