#include "sim/simulator.h"

#include <cassert>

#include "sim/actor.h"

namespace prestige {
namespace sim {

void Simulator::ScheduleAt(util::TimeMicros at, std::function<void()> fn) {
  if (at < now_) at = now_;
  queue_.push(Event{at, next_seq_++, std::move(fn)});
}

ActorId Simulator::AddActor(Actor* actor) {
  const ActorId id = static_cast<ActorId>(actors_.size());
  actors_.push_back(actor);
  actor->BindSimulator(this, id);
  return id;
}

bool Simulator::Step() {
  if (queue_.empty()) return false;
  // priority_queue::top is const; moving the closure out requires a copy of
  // the wrapper. Events are small (a std::function), so copy then pop.
  Event ev = queue_.top();
  queue_.pop();
  assert(ev.time >= now_);
  now_ = ev.time;
  ++events_executed_;
  ev.fn();
  return true;
}

void Simulator::RunUntil(util::TimeMicros until) {
  while (!queue_.empty() && queue_.top().time <= until) {
    Step();
  }
  if (now_ < until) now_ = until;
}

}  // namespace sim
}  // namespace prestige
