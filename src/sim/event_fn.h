// EventFn: a move-only callable for simulator events.
//
// std::function is the wrong shape for the event loop's hot path: it must
// be copyable (so every closure capturing a move-only type is banned), its
// small-buffer is only ~16 bytes on mainstream standard libraries (the
// typical event closure here captures [this, from, to, MessagePtr] ≈ 32
// bytes, forcing a heap allocation per scheduled event), and
// priority_queue::top() being const forced Simulator::Step to *copy* the
// wrapper — a second allocation plus shared_ptr refcount churn per event.
//
// EventFn fixes all three: move-only semantics, a 48-byte inline buffer
// sized for the network/timer closures the simulator actually schedules,
// and heap fallback only for oversized or throwing-move captures.

#ifndef PRESTIGE_SIM_EVENT_FN_H_
#define PRESTIGE_SIM_EVENT_FN_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace prestige {
namespace sim {

class EventFn {
 public:
  /// Inline capture budget. Covers the dominant closures — network
  /// delivery ([this, from, to, shared_ptr msg] = 32 bytes) and replica
  /// timers — with headroom; larger captures degrade to one heap node.
  static constexpr size_t kInlineBytes = 48;

  EventFn() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &InlineOps<Fn>::ops;
    } else {
      *reinterpret_cast<Fn**>(storage_) = new Fn(std::forward<F>(f));
      ops_ = &HeapOps<Fn>::ops;
    }
  }

  EventFn(EventFn&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      if (ops_ != nullptr) ops_->destroy(storage_);
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(storage_, other.storage_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() {
    if (ops_ != nullptr) ops_->destroy(storage_);
  }

  void operator()() { ops_->invoke(storage_); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    /// Move-constructs the callable into `dst` from `src` and destroys the
    /// source — one operation, so relocation never leaves a live source.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* storage) noexcept;
  };

  template <typename Fn>
  struct InlineOps {
    static void Invoke(void* storage) { (*static_cast<Fn*>(storage))(); }
    static void Relocate(void* dst, void* src) noexcept {
      Fn* from = static_cast<Fn*>(src);
      ::new (dst) Fn(std::move(*from));
      from->~Fn();
    }
    static void Destroy(void* storage) noexcept {
      static_cast<Fn*>(storage)->~Fn();
    }
    static constexpr Ops ops = {&Invoke, &Relocate, &Destroy};
  };

  template <typename Fn>
  struct HeapOps {
    static void Invoke(void* storage) { (**static_cast<Fn**>(storage))(); }
    static void Relocate(void* dst, void* src) noexcept {
      *static_cast<Fn**>(dst) = *static_cast<Fn**>(src);
    }
    static void Destroy(void* storage) noexcept {
      delete *static_cast<Fn**>(storage);
    }
    static constexpr Ops ops = {&Invoke, &Relocate, &Destroy};
  };

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

template <typename Fn>
constexpr EventFn::Ops EventFn::InlineOps<Fn>::ops;
template <typename Fn>
constexpr EventFn::Ops EventFn::HeapOps<Fn>::ops;

}  // namespace sim
}  // namespace prestige

#endif  // PRESTIGE_SIM_EVENT_FN_H_
