// Deterministic discrete-event simulator.
//
// The substitution for the paper's cloud testbed (DESIGN.md §4): replicas and
// client pools are Actors driven by a virtual clock. Event ordering is total
// (time, insertion sequence), so a run is exactly reproducible from its seed.
//
// The event queue is a std::push_heap/std::pop_heap binary heap over a
// plain vector rather than std::priority_queue: top() being const there
// forced Step() to *copy* every scheduled closure before popping it (an
// allocation + refcount churn per event). pop_heap moves events out, and
// EventFn (event_fn.h) keeps typical closures inline, so steady-state
// scheduling does not allocate.

#ifndef PRESTIGE_SIM_SIMULATOR_H_
#define PRESTIGE_SIM_SIMULATOR_H_

#include <cstdint>
#include <vector>

#include "sim/event_fn.h"
#include "util/random.h"
#include "util/time.h"

namespace prestige {
namespace sim {

class Actor;

/// Index of an actor within one simulation.
using ActorId = uint32_t;

/// The event loop: a binary min-heap of (time, seq, closure).
class Simulator {
 public:
  explicit Simulator(uint64_t seed) : rng_(seed) {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  util::TimeMicros Now() const { return now_; }

  /// Schedules `fn` at absolute virtual time `at` (clamped to now).
  void ScheduleAt(util::TimeMicros at, EventFn fn);

  /// Schedules `fn` after `delay` microseconds.
  void ScheduleAfter(util::DurationMicros delay, EventFn fn) {
    ScheduleAt(now_ + (delay < 0 ? 0 : delay), std::move(fn));
  }

  /// Registers an actor (non-owning) and wires its id. Actors must outlive
  /// the simulation.
  ActorId AddActor(Actor* actor);

  Actor* actor(ActorId id) { return actors_[id]; }
  size_t num_actors() const { return actors_.size(); }

  /// Runs events until the queue empties or virtual time reaches `until`.
  void RunUntil(util::TimeMicros until);

  /// Executes the single next event. Returns false if the queue is empty.
  bool Step();

  /// Root RNG; components fork their own streams from it.
  util::Rng* rng() { return &rng_; }

  /// Total events executed (progress / performance accounting).
  uint64_t events_executed() const { return events_executed_; }

 private:
  struct Event {
    util::TimeMicros time;
    uint64_t seq;
    EventFn fn;
  };

  /// Comparator for std::push_heap/std::pop_heap: "later" events sort
  /// lower, so the event with the smallest (time, seq) is at the front.
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  util::TimeMicros now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t events_executed_ = 0;
  std::vector<Event> heap_;
  std::vector<Actor*> actors_;
  util::Rng rng_;
};

}  // namespace sim
}  // namespace prestige

#endif  // PRESTIGE_SIM_SIMULATOR_H_
