#include "sim/network.h"

#include <algorithm>

#include "sim/actor.h"

namespace prestige {
namespace sim {

util::DurationMicros CostModel::ProcessingCost(const NetMessage& msg) const {
  const double us = proc_base_us * msg.CostUnits() +
                    proc_per_byte_us * static_cast<double>(msg.WireSize()) +
                    verify_sig_us * msg.NumSigVerifies();
  return std::max<util::DurationMicros>(
      1, static_cast<util::DurationMicros>(us));
}

util::DurationMicros CostModel::SerializationCost(const NetMessage& msg) const {
  const double us =
      static_cast<double>(msg.WireSize()) / bandwidth_bytes_per_us;
  return std::max<util::DurationMicros>(
      1, static_cast<util::DurationMicros>(us));
}

Network::Network(Simulator* sim, LatencyModel latency, CostModel cost)
    : sim_(sim), latency_(latency), cost_(cost), rng_(sim->rng()->Fork()) {}

void Network::PresizeActors(size_t count) {
  if (egress_free_.size() < count) egress_free_.resize(count, 0);
  if (cpu_free_.size() < count) cpu_free_.resize(count, 0);
}

void Network::GrowActorTables(ActorId id) {
  PresizeActors(static_cast<size_t>(id) + 1);
}

void Network::Send(ActorId from, ActorId to, MessagePtr msg) {
  ++stats_.messages_sent;
  if (down_nodes_.count(from) || down_nodes_.count(to)) {
    ++stats_.messages_dropped;
    return;
  }
  if (down_links_.count({from, to})) {
    ++stats_.messages_dropped;
    return;
  }
  // Fault plane: partitions sever the link outright; a LinkFault may lose
  // the message probabilistically. Both consult only the plane's own RNG
  // stream, so unfaulted runs are bit-identical to pre-fault-plane runs.
  const LinkFault* fault = nullptr;
  if (faults_.AnyConfigured()) {
    if (faults_.Severed(from, to)) {
      ++stats_.messages_cut;
      ++stats_.messages_dropped;
      return;
    }
    fault = faults_.FaultFor(from, to);
    if (fault != nullptr && fault->drop > 0.0 &&
        faults_.rng()->NextBool(fault->drop)) {
      ++stats_.messages_fault_dropped;
      ++stats_.messages_dropped;
      return;
    }
  }
  if (drop_probability_ > 0.0 && from != to &&
      rng_.NextBool(drop_probability_)) {
    ++stats_.messages_dropped;
    return;
  }

  const util::TimeMicros now = sim_->Now();

  if (from == to) {
    // Local hand-off: no egress or propagation, constant small cost.
    const util::TimeMicros arrival =
        now + static_cast<util::DurationMicros>(cost_.self_deliver_us);
    Deliver(from, to, msg, arrival);
    return;
  }

  stats_.bytes_sent += msg->WireSize();

  // Egress serialization: the sender's NIC transmits one message at a time.
  util::TimeMicros& egress = EgressFree(from);
  const util::TimeMicros tx_start = std::max(now, egress);
  const util::TimeMicros tx_done = tx_start + cost_.SerializationCost(*msg);
  egress = tx_done;

  util::TimeMicros arrival = tx_done + latency_.Sample(&rng_);
  if (fault != nullptr) {
    arrival += fault->extra_delay;
    if (fault->reorder > 0.0 && faults_.rng()->NextBool(fault->reorder)) {
      // Hold the message back so traffic sent after it can overtake it.
      ++stats_.messages_reordered;
      arrival += faults_.rng()->NextInRange(1, fault->reorder_window);
    }
    if (fault->duplicate > 0.0 && faults_.rng()->NextBool(fault->duplicate)) {
      // Middlebox-style duplicate: no second egress charge; the copy trails
      // the original by a small random gap.
      ++stats_.messages_duplicated;
      const util::TimeMicros copy_arrival =
          arrival + 1 + faults_.rng()->NextInRange(0, fault->reorder_window);
      Deliver(from, to, msg, copy_arrival);
    }
  }
  Deliver(from, to, msg, arrival);
}

void Network::Send(ActorId from, const std::vector<ActorId>& targets,
                   MessagePtr msg) {
  for (ActorId to : targets) {
    Send(from, to, msg);
  }
}

void Network::Deliver(ActorId from, ActorId to, const MessagePtr& msg,
                      util::TimeMicros arrival) {
  // Receiver CPU is claimed at arrival time, not send time, so the FIFO
  // backlog reflects every message that arrived earlier.
  sim_->ScheduleAt(arrival, [this, from, to, msg]() {
    if (down_nodes_.count(to)) {
      ++stats_.messages_dropped;
      return;
    }
    util::TimeMicros& cpu = CpuFree(to);
    const util::TimeMicros start = std::max(sim_->Now(), cpu);
    const util::TimeMicros done = start + cost_.ProcessingCost(*msg);
    cpu = done;
    sim_->ScheduleAt(done, [this, from, to, msg]() {
      if (down_nodes_.count(to)) {
        ++stats_.messages_dropped;
        return;
      }
      ++stats_.messages_delivered;
      sim_->actor(to)->OnMessage(from, msg);
    });
  });
}

void Network::SetNodeDown(ActorId id, bool down) {
  if (down) {
    down_nodes_.insert(id);
  } else {
    down_nodes_.erase(id);
  }
}

void Network::SetLinkDown(ActorId from, ActorId to, bool down) {
  if (down) {
    down_links_.insert({from, to});
  } else {
    down_links_.erase({from, to});
  }
}

}  // namespace sim
}  // namespace prestige
