// Link-level fault injection for the simulated network.
//
// The base Network models the *resources* of a healthy deployment
// (bandwidth, propagation, receiver CPU) plus crash-style faults (node
// down, hard link cuts). This layer adds the *degraded* regimes the
// evaluation's adversarial scenarios need — the regime where active,
// reputation-priced view changes differentiate from passive pacemakers:
//
//  * probabilistic message loss per directed link (flaky links),
//  * message duplication (retransmitting middleboxes),
//  * message reordering (a message is held back so later traffic
//    overtakes it),
//  * deterministic extra one-way delay (asymmetric / congested links),
//  * directed partitions expressed as node groups with a heal operation.
//
// All randomness comes from the plane's own RNG stream, which is only
// consulted for links that actually have a fault configured. A run with
// no faults configured therefore consumes *zero* draws from this stream
// and is bit-for-bit identical to a run against the base network —
// existing seeds and BENCH baselines stay valid.

#ifndef PRESTIGE_SIM_FAULT_H_
#define PRESTIGE_SIM_FAULT_H_

#include <cstdint>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "util/random.h"
#include "util/time.h"

namespace prestige {
namespace sim {

/// Index of an actor within one simulation (mirrors simulator.h; kept as a
/// plain typedef here to avoid an include cycle with network.h).
using ActorId = uint32_t;

/// Degradation profile of one directed link (or of all links, when used as
/// the plane's default). Probabilities are i.i.d. per message.
struct LinkFault {
  /// P(message silently lost).
  double drop = 0.0;
  /// P(message delivered twice). The copy arrives shortly after the
  /// original; duplication is modeled in the network core, so the sender
  /// pays egress only once (a middlebox duplicate, not a resend).
  double duplicate = 0.0;
  /// P(message held back so that later traffic can overtake it).
  double reorder = 0.0;
  /// Extra hold applied to a reordered message, sampled uniformly from
  /// [1, reorder_window] virtual microseconds.
  util::DurationMicros reorder_window = util::Millis(5);
  /// Deterministic extra one-way delay added to every message.
  util::DurationMicros extra_delay = 0;

  /// True when this fault changes any delivery at all.
  bool Active() const {
    return drop > 0.0 || duplicate > 0.0 || reorder > 0.0 || extra_delay > 0;
  }

  static LinkFault Lossy(double p) {
    LinkFault f;
    f.drop = p;
    return f;
  }
  static LinkFault Slow(util::DurationMicros extra) {
    LinkFault f;
    f.extra_delay = extra;
    return f;
  }
  static LinkFault Flaky(double drop, double duplicate, double reorder) {
    LinkFault f;
    f.drop = drop;
    f.duplicate = duplicate;
    f.reorder = reorder;
    return f;
  }
};

/// The fault state consulted by Network on every send: partitions plus
/// per-link / default degradation. Pure bookkeeping — the Network applies
/// the consequences (dropping, duplicating, delaying).
class FaultPlane {
 public:
  FaultPlane() : rng_(kDefaultSeed) {}

  /// Re-seeds the fault RNG stream. Scenario runners call this with the
  /// experiment seed so fault decisions vary across a seed sweep yet stay
  /// reproducible within one seed.
  void Seed(uint64_t seed) { rng_.Seed(seed ^ kSeedSalt); }

  // ------------------------------------------------------------ partitions

  /// Installs a partition: actors inside a group reach only their own
  /// group. Actors not named in any group are unrestricted — they can talk
  /// to (and be reached from) everyone; this is how client pools keep
  /// reaching all replicas while the replica set is split.
  void Partition(const std::vector<std::vector<ActorId>>& groups) {
    partition_group_.clear();
    uint32_t group_id = 0;
    for (const auto& group : groups) {
      for (ActorId id : group) partition_group_[id] = group_id;
      ++group_id;
    }
  }

  /// Removes the partition; all links deliver again (faults permitting).
  void Heal() { partition_group_.clear(); }

  bool partitioned() const { return !partition_group_.empty(); }

  /// True when the partition severs the directed link `from` -> `to`.
  bool Severed(ActorId from, ActorId to) const {
    if (partition_group_.empty() || from == to) return false;
    const auto a = partition_group_.find(from);
    const auto b = partition_group_.find(to);
    if (a == partition_group_.end() || b == partition_group_.end()) {
      return false;  // Unrestricted endpoint.
    }
    return a->second != b->second;
  }

  // ----------------------------------------------------------- link faults

  /// Applies `fault` to every directed link without a per-link override.
  void SetDefaultLinkFault(const LinkFault& fault) { default_fault_ = fault; }
  void ClearDefaultLinkFault() { default_fault_.reset(); }

  /// Applies `fault` to the directed link `from` -> `to` (overrides the
  /// default for that link).
  void SetLinkFault(ActorId from, ActorId to, const LinkFault& fault) {
    link_faults_[{from, to}] = fault;
  }
  void ClearLinkFault(ActorId from, ActorId to) {
    link_faults_.erase({from, to});
  }
  void ClearAllLinkFaults() {
    link_faults_.clear();
    default_fault_.reset();
  }

  /// The fault governing `from` -> `to`, or nullptr when the link is clean.
  /// Self-sends are never faulted.
  const LinkFault* FaultFor(ActorId from, ActorId to) const {
    if (from == to) return nullptr;
    const auto it = link_faults_.find({from, to});
    if (it != link_faults_.end()) {
      return it->second.Active() ? &it->second : nullptr;
    }
    if (default_fault_.has_value() && default_fault_->Active()) {
      return &*default_fault_;
    }
    return nullptr;
  }

  /// True when any fault or partition is configured (fast path guard).
  bool AnyConfigured() const {
    return !partition_group_.empty() || !link_faults_.empty() ||
           default_fault_.has_value();
  }

  /// The plane's private RNG stream for fault decisions.
  util::Rng* rng() { return &rng_; }

 private:
  static constexpr uint64_t kDefaultSeed = 0x5eedfa017ULL;
  static constexpr uint64_t kSeedSalt = 0xfa017b1a5e5eedULL;

  std::map<std::pair<ActorId, ActorId>, LinkFault> link_faults_;
  std::optional<LinkFault> default_fault_;
  std::map<ActorId, uint32_t> partition_group_;
  util::Rng rng_;
};

}  // namespace sim
}  // namespace prestige

#endif  // PRESTIGE_SIM_FAULT_H_
