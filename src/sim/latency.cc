#include "sim/latency.h"

#include <algorithm>

namespace prestige {
namespace sim {

util::DurationMicros LatencyModel::Sample(util::Rng* rng) const {
  double ms = 0.0;
  switch (kind_) {
    case Kind::kFixed:
      ms = a_ms_;
      break;
    case Kind::kUniform:
      ms = a_ms_ + (b_ms_ - a_ms_) * rng->NextDouble();
      break;
    case Kind::kNormal:
      ms = rng->NextNormal(a_ms_, b_ms_);
      break;
  }
  ms = std::max(ms, floor_ms_);
  return static_cast<util::DurationMicros>(ms * 1000.0);
}

double LatencyModel::MeanMs() const {
  switch (kind_) {
    case Kind::kFixed:
      return a_ms_;
    case Kind::kUniform:
      return (a_ms_ + b_ms_) / 2.0;
    case Kind::kNormal:
      return std::max(a_ms_, floor_ms_);
  }
  return a_ms_;
}

}  // namespace sim
}  // namespace prestige
