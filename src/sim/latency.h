// One-way link latency models.
//
// The paper's testbed has a raw inter-VM latency under 2 ms and emulates
// extra delay with netem as Normal(10 ms, 5 ms) (§6.1). Both are expressible
// here; samples are clamped to a floor so netem's normal tail cannot go
// negative.

#ifndef PRESTIGE_SIM_LATENCY_H_
#define PRESTIGE_SIM_LATENCY_H_

#include "util/random.h"
#include "util/time.h"

namespace prestige {
namespace sim {

/// A sampled one-way propagation delay distribution.
class LatencyModel {
 public:
  /// Constant delay.
  static LatencyModel Fixed(double ms) {
    return LatencyModel(Kind::kFixed, ms, 0.0, ms);
  }

  /// Uniform in [lo_ms, hi_ms].
  static LatencyModel Uniform(double lo_ms, double hi_ms) {
    return LatencyModel(Kind::kUniform, lo_ms, hi_ms, lo_ms);
  }

  /// Normal(mu_ms, sigma_ms) clamped below at `floor_ms` — the netem shape.
  static LatencyModel Normal(double mu_ms, double sigma_ms,
                             double floor_ms = 0.1) {
    return LatencyModel(Kind::kNormal, mu_ms, sigma_ms, floor_ms);
  }

  /// The paper's raw-datacenter profile: <2 ms one-way, mildly variable.
  static LatencyModel Datacenter() { return Uniform(0.8, 1.6); }

  /// The paper's netem profile stacked on the raw latency: d = 10 +- 5 ms.
  static LatencyModel NetemEmulated() { return Normal(11.2, 5.0, 0.8); }

  /// One sampled one-way delay in virtual microseconds (>= floor).
  util::DurationMicros Sample(util::Rng* rng) const;

  /// Mean one-way delay in milliseconds (for reporting).
  double MeanMs() const;

 private:
  enum class Kind { kFixed, kUniform, kNormal };

  LatencyModel(Kind kind, double a_ms, double b_ms, double floor_ms)
      : kind_(kind), a_ms_(a_ms), b_ms_(b_ms), floor_ms_(floor_ms) {}

  Kind kind_;
  double a_ms_;
  double b_ms_;
  double floor_ms_;
};

}  // namespace sim
}  // namespace prestige

#endif  // PRESTIGE_SIM_LATENCY_H_
