// Actor: an event-driven node (replica or client pool) in the simulation.

#ifndef PRESTIGE_SIM_ACTOR_H_
#define PRESTIGE_SIM_ACTOR_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "sim/message.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "util/random.h"
#include "util/time.h"

namespace prestige {
namespace sim {

/// Handle to a pending timer; cancellable.
using TimerId = uint64_t;

/// Base class for simulated processes.
///
/// Lifecycle: construct → Simulator::AddActor (binds id) → AttachNetwork →
/// OnStart at t=0 (scheduled by the harness) → OnMessage / OnTimer callbacks.
class Actor {
 public:
  virtual ~Actor() = default;

  /// Called once when the simulation starts.
  virtual void OnStart() {}

  /// Called for every delivered network message.
  virtual void OnMessage(ActorId from, const MessagePtr& msg) = 0;

  /// Called when a timer set via SetTimer fires (and was not cancelled).
  virtual void OnTimer(uint64_t tag) { (void)tag; }

  /// Wires the simulator; invoked by Simulator::AddActor.
  void BindSimulator(Simulator* sim, ActorId id) {
    sim_ = sim;
    id_ = id;
    rng_ = sim->rng()->Fork();
  }

  /// Wires the network fabric; invoked by the harness after AddActor.
  void AttachNetwork(Network* net) { net_ = net; }

  ActorId id() const { return id_; }

 protected:
  util::TimeMicros Now() const { return sim_->Now(); }
  util::Rng* rng() { return &rng_; }
  Simulator* simulator() { return sim_; }
  Network* network() { return net_; }

  /// Sends `msg` to a single actor.
  void Send(ActorId to, MessagePtr msg) { net_->Send(id_, to, msg); }

  /// Sends `msg` to every actor in `targets` (may include self).
  void Send(const std::vector<ActorId>& targets, MessagePtr msg) {
    net_->Send(id_, targets, msg);
  }

  /// Arms a one-shot timer after `delay`; OnTimer(tag) fires unless the
  /// timer is cancelled first.
  TimerId SetTimer(util::DurationMicros delay, uint64_t tag) {
    const TimerId timer = next_timer_id_++;
    live_timers_.insert(timer);
    sim_->ScheduleAfter(delay, [this, timer, tag]() {
      if (live_timers_.erase(timer) > 0) {
        OnTimer(tag);
      }
    });
    return timer;
  }

  /// Cancels a pending timer; firing is suppressed if it has not fired yet.
  void CancelTimer(TimerId timer) { live_timers_.erase(timer); }

  /// Cancels all pending timers of this actor.
  void CancelAllTimers() { live_timers_.clear(); }

 private:
  Simulator* sim_ = nullptr;
  Network* net_ = nullptr;
  ActorId id_ = 0;
  util::Rng rng_{0};
  TimerId next_timer_id_ = 1;
  std::unordered_set<TimerId> live_timers_;
};

}  // namespace sim
}  // namespace prestige

#endif  // PRESTIGE_SIM_ACTOR_H_
