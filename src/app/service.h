// The application service interface: what the replicated state machine
// executes and what clients get back.
//
// This replaces the earlier fire-and-forget ledger::StateMachine::Apply
// (which consumed whole blocks and returned nothing). An app::Service
// executes one command at a time and returns a Response — status plus
// opaque result bytes — which rides back to the client inside a
// types::ClientReply and is matched there against f+1 replicas' results by
// digest. Block and checkpoint boundaries are explicit hooks so services
// can batch side effects and the session layer can evict reply caches at
// deterministic points.
//
// Determinism contract: Execute must be a pure function of (service state,
// transaction). All honest replicas call Execute on the same transactions
// in the same commit order, so their StateDigest() streams must agree —
// the harness checks exactly that across replicas (harness/invariants.h).

#ifndef PRESTIGE_APP_SERVICE_H_
#define PRESTIGE_APP_SERVICE_H_

#include <cstdint>
#include <vector>

#include "types/ids.h"
#include "types/transaction.h"

namespace prestige {
namespace app {

/// Outcome class of one command execution.
enum class ExecStatus : uint8_t {
  kOk = 0,        ///< Executed; `result` holds the command's output.
  kError = 1,     ///< Executed but the command itself failed (bad opcode…).
  kStaleDup = 2,  ///< Duplicate of a request whose cached reply was already
                  ///< evicted at a checkpoint; committed, result unavailable.
};

/// Result of executing one command.
struct Response {
  ExecStatus status = ExecStatus::kOk;
  std::vector<uint8_t> result;  ///< Opaque result bytes (may be empty).
};

/// 64-bit digest of a response, used for client-side reply-quorum matching
/// (f+1 replicas must report the same digest before a request completes).
/// FNV-1a — replies are already authenticated per-replica by the transport
/// MAC model; this digest only needs to detect divergent results.
inline uint64_t ResultDigest(const Response& response) {
  uint64_t h = 1469598103934665603ULL;
  h = (h ^ static_cast<uint8_t>(response.status)) * 1099511628211ULL;
  for (uint8_t b : response.result) {
    h = (h ^ b) * 1099511628211ULL;
  }
  return h;
}

/// Deterministic application executed in commit order on every replica.
class Service {
 public:
  virtual ~Service() = default;

  /// Executes one committed command and returns its result. Called exactly
  /// once per distinct (pool, client_seq) — the session layer suppresses
  /// duplicates before they reach the service.
  virtual Response Execute(const types::Transaction& tx) = 0;

  /// Block boundary: every transaction of the block at height `n` (view
  /// `v`) has been executed.
  virtual void OnBlockCommitted(types::SeqNum n, types::View v) {
    (void)n;
    (void)v;
  }

  /// Checkpoint boundary (every checkpoint_interval blocks): a natural
  /// point for services to snapshot / compact. The session layer evicts
  /// cached replies here.
  virtual void OnCheckpoint(types::SeqNum n) { (void)n; }

  /// Order-sensitive digest of the applied history. Equal digests on two
  /// replicas mean they executed identical command sequences with
  /// identical results.
  virtual uint64_t StateDigest() const = 0;

  /// Number of commands executed (exactly-once count).
  virtual int64_t applied_count() const = 0;
};

/// No-op service for pure-throughput experiments: every command succeeds
/// with an empty result; the digest folds only execution order.
class NullService : public Service {
 public:
  Response Execute(const types::Transaction& tx) override {
    ++applied_;
    digest_ = digest_ * 1099511628211ULL ^
              (static_cast<uint64_t>(tx.pool) * 31 + tx.client_seq);
    return Response{};
  }
  uint64_t StateDigest() const override { return digest_; }
  int64_t applied_count() const override { return applied_; }

 private:
  int64_t applied_ = 0;
  uint64_t digest_ = 1469598103934665603ULL;
};

}  // namespace app
}  // namespace prestige

#endif  // PRESTIGE_APP_SERVICE_H_
