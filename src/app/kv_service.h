// KvService: the replicated key-value store, rewritten as a command-encoded
// app::Service (successor of the fingerprint-driven ledger::KvStateMachine).
//
// Commands are opaque bytes carried in Transaction::command:
//   Put  [0x01][key u64 LE][value u64 LE]  -> result: previous value (u64)
//   Get  [0x02][key u64 LE]                -> result: current value (u64)
// A transaction with an *empty* command is treated as a fingerprint-derived
// Put (key = fingerprint % key_space, value = fingerprint) — the migration
// path for workloads that predate real command payloads, and byte-for-byte
// the old KvStateMachine semantics.

#ifndef PRESTIGE_APP_KV_SERVICE_H_
#define PRESTIGE_APP_KV_SERVICE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "app/service.h"

namespace prestige {
namespace app {
namespace kv {

enum Op : uint8_t { kPut = 0x01, kGet = 0x02 };

inline void AppendU64(std::vector<uint8_t>& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<uint8_t>(v >> (i * 8)));
}

inline uint64_t ReadU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (i * 8);
  return v;
}

inline std::vector<uint8_t> EncodePut(uint64_t key, uint64_t value) {
  std::vector<uint8_t> cmd;
  cmd.reserve(17);
  cmd.push_back(kPut);
  AppendU64(cmd, key);
  AppendU64(cmd, value);
  return cmd;
}

inline std::vector<uint8_t> EncodeGet(uint64_t key) {
  std::vector<uint8_t> cmd;
  cmd.reserve(9);
  cmd.push_back(kGet);
  AppendU64(cmd, key);
  return cmd;
}

/// Decodes a u64 result (Put's previous value / Get's value). Returns 0 for
/// malformed results.
inline uint64_t DecodeValue(const std::vector<uint8_t>& result) {
  return result.size() == 8 ? ReadU64(result.data()) : 0;
}

}  // namespace kv

/// Deterministic KV store over command-encoded Put/Get.
class KvService : public Service {
 public:
  explicit KvService(uint64_t key_space = 1024)
      : key_space_(key_space == 0 ? 1 : key_space) {}

  Response Execute(const types::Transaction& tx) override {
    Response response;
    uint64_t key = 0;
    uint64_t value = 0;
    uint8_t op = kv::kPut;
    const std::vector<uint8_t>& cmd = tx.command;
    if (cmd.empty()) {
      // Legacy fingerprint-derived Put (see header comment).
      key = tx.fingerprint % key_space_;
      value = tx.fingerprint;
    } else if (cmd[0] == kv::kPut && cmd.size() == 17) {
      key = kv::ReadU64(cmd.data() + 1) % key_space_;
      value = kv::ReadU64(cmd.data() + 9);
    } else if (cmd[0] == kv::kGet && cmd.size() == 9) {
      op = kv::kGet;
      key = kv::ReadU64(cmd.data() + 1) % key_space_;
    } else {
      response.status = ExecStatus::kError;
      Fold(0xbad, 0xbad);
      ++applied_;
      return response;
    }

    if (op == kv::kPut) {
      uint64_t& slot = map_[key];
      kv::AppendU64(response.result, slot);  // Previous value.
      slot = value;
      Fold(key, value);
    } else {
      auto it = map_.find(key);
      const uint64_t current = it == map_.end() ? 0 : it->second;
      kv::AppendU64(response.result, current);
      Fold(key, ~current);  // Reads fold too: order-sensitive history.
    }
    ++applied_;
    return response;
  }

  uint64_t StateDigest() const override { return state_digest_; }
  int64_t applied_count() const override { return applied_; }

  /// Value for `key`, or 0 if absent (local inspection; goes through
  /// consensus only when issued as a Get command).
  uint64_t Get(uint64_t key) const {
    auto it = map_.find(key % key_space_);
    return it == map_.end() ? 0 : it->second;
  }

  size_t size() const { return map_.size(); }

 private:
  void Fold(uint64_t key, uint64_t value) {
    state_digest_ = state_digest_ * 1099511628211ULL ^ (key * 31 + value);
  }

  uint64_t key_space_;
  std::unordered_map<uint64_t, uint64_t> map_;
  int64_t applied_ = 0;
  uint64_t state_digest_ = 1469598103934665603ULL;
};

}  // namespace app
}  // namespace prestige

#endif  // PRESTIGE_APP_KV_SERVICE_H_
